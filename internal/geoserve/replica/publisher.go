// Package replica is the multi-node replication tier over geoserve
// snapshots: a builder node publishes digest-checked snapshot epochs
// over HTTP, replica nodes run a fetch → verify → swap loop against
// it, and a thin router fans lookups out over the replicas without
// ever blending epochs inside one answer set. See DESIGN.md
// ("Replicated serving") for the consistency rules and the
// degraded-mode matrix.
package replica

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"
	"time"

	"geonet/internal/geoserve"
	"geonet/internal/geoserve/snapfile"
)

// Manifest describes the builder's current epoch: what a replica
// decides from and verifies against. Digest is the snapshot content
// digest the fetched file must reassemble to.
type Manifest struct {
	Epoch         uint64             `json:"epoch"`
	Digest        string             `json:"digest"`
	SizeBytes     int64              `json:"size_bytes"`
	FormatVersion uint32             `json:"format_version"`
	Build         geoserve.BuildInfo `json:"build"`
	// PublishedUnix is when the builder published this epoch.
	PublishedUnix int64 `json:"published_unix"`
}

// Publisher is the builder-side replication surface: it holds the
// encoded snapfile of the newest epoch and serves
//
//	GET /v1/replication/manifest        the current Manifest
//	GET /v1/replication/snapshot/{epoch} the epoch's snapfile bytes
//	                                     (Range supported, so
//	                                     interrupted fetches resume)
//
// Publish is cheap relative to a pipeline run (one snapfile encode);
// epochs are dense integers from 1.
type Publisher struct {
	mu       sync.RWMutex
	manifest Manifest
	blob     []byte
	// now is stubbed in tests.
	now func() time.Time
}

// NewPublisher starts with no epoch; the manifest endpoint answers 503
// until the first Publish.
func NewPublisher() *Publisher {
	return &Publisher{now: time.Now}
}

// Publish encodes the snapshot as the next epoch and makes it the one
// the manifest advertises. Returns the new manifest.
func (p *Publisher) Publish(snap *geoserve.Snapshot) (Manifest, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	epoch := p.manifest.Epoch + 1
	blob, err := snapfile.Encode(snap, epoch)
	if err != nil {
		return Manifest{}, err
	}
	p.blob = blob
	p.manifest = Manifest{
		Epoch:         epoch,
		Digest:        snap.Digest(),
		SizeBytes:     int64(len(blob)),
		FormatVersion: snapfile.FormatVersion,
		Build:         snap.Build(),
		PublishedUnix: p.now().Unix(),
	}
	return p.manifest, nil
}

// Manifest returns the current manifest; ok=false before the first
// Publish.
func (p *Publisher) Manifest() (Manifest, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.manifest, p.manifest.Epoch > 0
}

// Handler serves the replication endpoints. Mount it on the builder's
// mux alongside the ordinary serving API.
func (p *Publisher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/manifest", func(w http.ResponseWriter, r *http.Request) {
		m, ok := p.Manifest()
		if !ok {
			httpJSONError(w, http.StatusServiceUnavailable, "no epoch published yet")
			return
		}
		writeJSON(w, m)
	})
	mux.HandleFunc("GET /v1/replication/snapshot/{epoch}", func(w http.ResponseWriter, r *http.Request) {
		epoch, err := strconv.ParseUint(r.PathValue("epoch"), 10, 64)
		if err != nil {
			httpJSONError(w, http.StatusBadRequest, "bad epoch %q", r.PathValue("epoch"))
			return
		}
		p.mu.RLock()
		m, blob := p.manifest, p.blob
		p.mu.RUnlock()
		if m.Epoch == 0 {
			httpJSONError(w, http.StatusServiceUnavailable, "no epoch published yet")
			return
		}
		if epoch != m.Epoch {
			// Only the newest epoch is retained; a replica asking for
			// an older one re-reads the manifest and fetches fresh.
			httpJSONError(w, http.StatusNotFound, "epoch %d gone (current %d)", epoch, m.Epoch)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Geo-Epoch", strconv.FormatUint(m.Epoch, 10))
		w.Header().Set("X-Geo-Digest", m.Digest)
		// ServeContent supplies Range handling, so interrupted
		// downloads resume instead of restarting.
		http.ServeContent(w, r, "snapshot.snap", time.Unix(m.PublishedUnix, 0), bytes.NewReader(blob))
	})
	return mux
}
