package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"geonet/internal/geoserve"
	"geonet/internal/geoserve/snapfile"
	"geonet/internal/obs"
	"geonet/internal/rng"
)

// ErrVerify marks a fetched snapshot that arrived complete but failed
// verification (bad decode, digest/epoch disagreement with the
// manifest). The replica discards it and keeps serving its last-good
// epoch.
var ErrVerify = errors.New("replica: fetched snapshot failed verification")

// ErrEpochGone marks a typed replication not-found: the epoch we asked
// for was published but has already left the builder's retention
// window — the manifest we decided from went stale between our read
// and our fetch (the publisher pruned mid-poll). This is a benign race
// to recover from, not a failure: SyncOnce re-reads the manifest and
// retries within the same attempt, without counting a fetch failure or
// burning a backoff cycle.
var ErrEpochGone = errors.New("replica: requested epoch no longer retained by the builder")

// Config shapes a replica node.
type Config struct {
	// BuilderURL is the builder's base URL (no trailing slash).
	BuilderURL string
	// Client performs the fetches; nil means http.DefaultClient. Tests
	// inject a faultinject.Transport here.
	Client *http.Client
	// PollInterval is the manifest poll cadence while healthy
	// (default 2s).
	PollInterval time.Duration
	// FetchTimeout bounds one whole SyncOnce attempt (default 30s).
	FetchTimeout time.Duration
	// Backoff shapes the retry schedule after failed syncs.
	Backoff BackoffPolicy
	// Seed seeds the backoff jitter (default 1).
	Seed int64
	// StaleAfter is how long without successful builder contact before
	// /statusz reports stale_epoch (default 3×PollInterval).
	StaleAfter time.Duration
	// WarmupProbes is how many seeded self-probes (per interval kind)
	// a freshly verified snapshot must answer before the swap; 0 means
	// the default of 16, negative disables the gate.
	WarmupProbes int
	// NoDelta forces full-snapshot fetches even when the builder
	// retains our current epoch.
	NoDelta bool
	// Shards > 1 serves each installed epoch through a sharded
	// geoserve.Cluster instead of a single Engine, so one replica
	// process exercises the scatter-gather path (and reports honest
	// per-shard trace spans). 0 or 1 means a single engine.
	Shards int
	// QueueBudget is the per-shard in-flight batch budget in cluster
	// mode; <= 0 means geoserve.DefaultQueueBudget.
	QueueBudget int
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Second
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.PollInterval
	}
	if c.WarmupProbes == 0 {
		c.WarmupProbes = 16
	}
	return c
}

// served binds one epoch's engine and handler together so the epoch
// headers a response carries always match the snapshot that answered
// it — the cross-process analogue of the cluster's epoch view.
type served struct {
	// Exactly one of engine/cluster is non-nil, per Config.Shards.
	engine  *geoserve.Engine
	cluster *geoserve.Cluster
	handler http.Handler
	snap    *geoserve.Snapshot
	epoch   uint64
	digest  string
	since   time.Time
}

// Replica is one serving node of the fleet: it polls the builder's
// manifest, fetches new epochs (resuming interrupted downloads),
// verifies them end to end before the atomic swap, and serves the
// geoserve HTTP API from whatever epoch it last verified. A fetch that
// fails — unreachable builder, truncation, corruption, version skew —
// leaves the last-good epoch serving untouched.
type Replica struct {
	cfg     Config
	cur     atomic.Pointer[served]
	backoff *Backoff

	// partial retains an interrupted download keyed by the (epoch,
	// digest) it was for, so the next attempt resumes with a Range
	// request instead of starting over.
	mu            sync.Mutex
	partial       []byte
	partialEpoch  uint64
	partialDigest string
	lastErr       string

	lastContact    atomic.Int64 // unix nanos of the last successful manifest read; 0 = never
	fetches        atomic.Uint64
	failures       atomic.Uint64
	resumes        atomic.Uint64
	swaps          atomic.Uint64
	deltaSyncs     atomic.Uint64
	deltaFallbacks atomic.Uint64
	epochGone      atomic.Uint64
	warmupFails    atomic.Uint64
	warmupFailed   atomic.Bool // the most recent install attempt failed warm-up
	draining       atomic.Bool
	inflight       atomic.Int64
	start          time.Time
	now            func() time.Time
	obs            *obs.Observability
	// warmupFn gates the swap; tests stub it to force failures.
	warmupFn func(target warmTarget, epoch uint64) error
}

// warmTarget is what the warm-up gate needs from a candidate serving
// backend: both Engine and Cluster satisfy it, so one self-probe
// covers both serving modes.
type warmTarget interface {
	Lookup(mapper int, ip uint32) geoserve.Answer
	Snapshot() *geoserve.Snapshot
}

// New builds a replica; it serves 503 until its first successful sync.
func New(cfg Config) *Replica {
	cfg = cfg.withDefaults()
	r := &Replica{
		cfg:     cfg,
		backoff: NewBackoff(cfg.Backoff, cfg.Seed),
		start:   time.Now(),
		now:     time.Now,
		obs:     obs.NewObservability("replica"),
	}
	r.warmupFn = r.selfProbe
	r.registerMetrics()
	return r
}

// Obs exposes the replica's observability bundle so cmd/geoserved can
// mount the same registry and trace ring on a debug listener.
func (r *Replica) Obs() *obs.Observability { return r.obs }

// registerMetrics exposes the replication families: how current the
// served epoch is, how syncing is going, and the gates (warm-up,
// drain) a fleet operator alerts on. All readers load atomics or take
// only short internal locks at scrape time.
func (r *Replica) registerMetrics() {
	reg := r.obs.Metrics
	reg.GaugeFunc("geoserve_replication_epoch",
		"Served snapshot epoch (0 before the first sync).", nil,
		func() float64 { return float64(r.Epoch()) })
	reg.GaugeFunc("geoserve_replication_epoch_age_seconds",
		"Seconds since the served epoch was installed (0 before the first sync).", nil,
		func() float64 {
			if cur := r.cur.Load(); cur != nil {
				return r.now().Sub(cur.since).Seconds()
			}
			return 0
		})
	reg.GaugeFunc("geoserve_replication_seconds_since_contact",
		"Seconds since the last successful manifest read (-1 before the first).", nil,
		func() float64 {
			if last := r.lastContact.Load(); last > 0 {
				return r.now().Sub(time.Unix(0, last)).Seconds()
			}
			return -1
		})
	reg.GaugeFunc("geoserve_replication_stale",
		"1 when serving an epoch without builder contact within StaleAfter.", nil,
		func() float64 {
			if r.cur.Load() == nil {
				return 0
			}
			last := r.lastContact.Load()
			if last == 0 || r.now().Sub(time.Unix(0, last)) > r.cfg.StaleAfter {
				return 1
			}
			return 0
		})
	reg.CounterFunc("geoserve_replication_fetches_total",
		"Full snapshot files fetched.", nil, r.fetches.Load)
	reg.CounterFunc("geoserve_replication_fetch_failures_total",
		"Sync attempts that failed.", nil, r.failures.Load)
	reg.CounterFunc("geoserve_replication_resumes_total",
		"Interrupted downloads resumed with a Range request.", nil, r.resumes.Load)
	reg.CounterFunc("geoserve_replication_swaps_total",
		"Verified epochs swapped into serving.", nil, r.swaps.Load)
	reg.CounterFunc("geoserve_replication_delta_syncs_total",
		"Epochs reached by applying a delta.", nil, r.deltaSyncs.Load)
	reg.CounterFunc("geoserve_replication_delta_fallbacks_total",
		"Delta attempts demoted to a full fetch.", nil, r.deltaFallbacks.Load)
	reg.CounterFunc("geoserve_replication_epoch_gone_total",
		"Retention-window races (requested epoch pruned mid-poll) recovered by re-reading the manifest.", nil, r.epochGone.Load)
	reg.CounterFunc("geoserve_replication_warmup_failures_total",
		"Install attempts rejected by the warm-up self-probe.", nil, r.warmupFails.Load)
	reg.GaugeFunc("geoserve_replication_warmup_failed",
		"1 while the most recent install attempt failed warm-up.", nil,
		func() float64 {
			if r.warmupFailed.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("geoserve_replication_draining",
		"1 after Drain is called.", nil,
		func() float64 {
			if r.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("geoserve_replication_inflight",
		"Query requests currently being served.", nil,
		func() float64 { return float64(r.inflight.Load()) })
}

// Epoch reports the served epoch (0 before the first sync).
func (r *Replica) Epoch() uint64 {
	if cur := r.cur.Load(); cur != nil {
		return cur.epoch
	}
	return 0
}

// Engine exposes the serving engine of the current epoch (nil before
// the first sync and in cluster mode); in-process callers can drive
// lookups through it.
func (r *Replica) Engine() *geoserve.Engine {
	if cur := r.cur.Load(); cur != nil {
		return cur.engine
	}
	return nil
}

// Cluster exposes the serving cluster of the current epoch (nil before
// the first sync and in single-engine mode).
func (r *Replica) Cluster() *geoserve.Cluster {
	if cur := r.cur.Load(); cur != nil {
		return cur.cluster
	}
	return nil
}

// Run drives the sync loop until ctx ends: poll the manifest, fetch
// and verify new epochs, swap; failures retry under the capped,
// jittered backoff and success rearms it.
func (r *Replica) Run(ctx context.Context) error {
	for {
		_, err := r.SyncOnce(ctx)
		var d time.Duration
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			d = r.backoff.Next()
		} else {
			r.backoff.Reset()
			d = r.cfg.PollInterval
		}
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// SyncOnce performs one poll-fetch-verify-swap attempt: read the
// manifest, and when it names an epoch we do not serve, download
// (resuming any partial), verify byte integrity + content digest +
// manifest agreement, warm the new snapshot up, and atomically swap it
// in. When the builder still retains our current epoch a delta is
// fetched instead of the whole file; any delta failure — missing
// endpoint, corrupt bytes, wrong base, digest mismatch — falls back to
// the full fetch within the same attempt. Returns whether a new epoch
// was swapped in. Any error leaves the previously served epoch
// untouched.
//
// A typed gone answer (ErrEpochGone — the epoch the manifest named was
// pruned between our manifest read and our fetch) is a benign race,
// not a failure: SyncOnce re-reads the manifest once and retries
// within the same attempt, so the race neither counts toward
// fetch_failures nor burns a backoff cycle.
func (r *Replica) SyncOnce(ctx context.Context) (swapped bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.FetchTimeout)
	defer cancel()
	defer func() {
		if err != nil {
			r.failures.Add(1)
			r.mu.Lock()
			r.lastErr = err.Error()
			r.mu.Unlock()
		}
	}()

	m, err := r.fetchManifest(ctx)
	if err != nil {
		return false, err
	}
	r.lastContact.Store(r.now().UnixNano())
	for attempt := 0; ; attempt++ {
		swapped, err = r.syncToManifest(ctx, m)
		if errors.Is(err, ErrEpochGone) && attempt == 0 {
			r.epochGone.Add(1)
			if m, err = r.fetchManifest(ctx); err != nil {
				return false, err
			}
			r.lastContact.Store(r.now().UnixNano())
			continue
		}
		return swapped, err
	}
}

// syncToManifest brings the replica up to one specific manifest: no-op
// if already serving it, else delta when eligible, else full fetch +
// verify + install.
func (r *Replica) syncToManifest(ctx context.Context, m Manifest) (bool, error) {
	cur := r.cur.Load()
	if cur != nil && cur.epoch == m.Epoch && cur.digest == m.Digest {
		return false, nil
	}
	if m.FormatVersion != snapfile.FormatVersion {
		return false, fmt.Errorf("%w: builder publishes format v%d, this build speaks v%d",
			snapfile.ErrVersion, m.FormatVersion, snapfile.FormatVersion)
	}

	if snap, ok := r.trySyncDelta(ctx, cur, m); ok {
		if err := r.install(snap, m); err != nil {
			return false, err
		}
		r.deltaSyncs.Add(1)
		return true, nil
	}

	blob, err := r.fetchBlob(ctx, m)
	if err != nil {
		return false, err
	}
	r.fetches.Add(1)

	// Verify before swap: the file must decode (magic, bounds, file
	// hash, recomputed content digest vs trailer) and agree with the
	// manifest that named it. Failure discards the bytes — a complete
	// but corrupt download is never worth resuming into.
	snap, info, err := snapfile.Decode(blob)
	if err != nil {
		r.dropPartial()
		return false, fmt.Errorf("%w: %v", ErrVerify, err)
	}
	if info.Epoch != m.Epoch || snap.Digest() != m.Digest {
		r.dropPartial()
		return false, fmt.Errorf("%w: file is epoch %d digest %s, manifest named epoch %d digest %s",
			ErrVerify, info.Epoch, snap.Digest(), m.Epoch, m.Digest)
	}
	if err := r.install(snap, m); err != nil {
		return false, err
	}
	return true, nil
}

// trySyncDelta attempts a delta upgrade from the served epoch to the
// manifest's. ok=false means "use the full fetch" — either we weren't
// eligible (no served epoch, builder doesn't retain it) or the delta
// path failed and was counted as a fallback. Delta bytes are
// self-verifying (file hash, base digest, applied content digest) and
// the result is additionally checked against the manifest, so a bad
// delta can demote us to the full path but never into serving wrong
// bytes.
func (r *Replica) trySyncDelta(ctx context.Context, cur *served, m Manifest) (*geoserve.Snapshot, bool) {
	if r.cfg.NoDelta || cur == nil || cur.snap == nil || cur.epoch >= m.Epoch ||
		!slices.Contains(m.Retained, cur.epoch) {
		return nil, false
	}
	snap, err := r.fetchDelta(ctx, cur, m)
	if err != nil {
		r.deltaFallbacks.Add(1)
		r.mu.Lock()
		r.lastErr = err.Error()
		r.mu.Unlock()
		return nil, false
	}
	return snap, true
}

func (r *Replica) fetchDelta(ctx context.Context, cur *served, m Manifest) (*geoserve.Snapshot, error) {
	url := fmt.Sprintf("%s/v1/replication/delta/%d/%d", r.cfg.BuilderURL, cur.epoch, m.Epoch)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: delta fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusNotFound && resp.Header.Get(goneHeader) != "" {
			return nil, fmt.Errorf("%w: delta base %d pruned", ErrEpochGone, cur.epoch)
		}
		return nil, fmt.Errorf("replica: delta fetch: status %d", resp.StatusCode)
	}
	// A delta bigger than the full file plus slack is either damage or
	// not worth applying; the limit turns it into an Apply failure.
	blob, err := io.ReadAll(io.LimitReader(resp.Body, m.SizeBytes+(1<<20)))
	if err != nil {
		return nil, fmt.Errorf("replica: delta fetch interrupted: %w", err)
	}
	snap, info, err := snapfile.Apply(cur.snap, blob)
	if err != nil {
		return nil, fmt.Errorf("%w: delta apply: %v", ErrVerify, err)
	}
	if info.ToEpoch != m.Epoch || snap.Digest() != m.Digest {
		return nil, fmt.Errorf("%w: delta lands on epoch %d digest %s, manifest named epoch %d digest %s",
			ErrVerify, info.ToEpoch, snap.Digest(), m.Epoch, m.Digest)
	}
	return snap, nil
}

// install builds the serving backend for a verified snapshot (a
// sharded cluster when Config.Shards > 1, else an engine), gates the
// swap on the warm-up self-probe, and publishes the bundle atomically.
// A warm-up failure keeps the last-good epoch serving and surfaces as
// warmup_failed in /statusz.
//
// Both modes rebuild the handler against the replica's one
// observability bundle: re-registration replaces series in place, so
// /metrics keeps a single continuous scrape across epochs. Both modes
// also carry their serving counters across the swap — the engine path
// via NewEngineFrom, the cluster path via NewClusterFrom — so lookup
// totals, latency history, and the swap count are monotone whether an
// epoch arrived as a full fetch or a delta apply.
func (r *Replica) install(snap *geoserve.Snapshot, m Manifest) error {
	next := &served{snap: snap, epoch: m.Epoch, digest: m.Digest}
	var target warmTarget
	if r.cfg.Shards > 1 {
		var prev *geoserve.Cluster
		if cur := r.cur.Load(); cur != nil {
			prev = cur.cluster
		}
		clu, err := geoserve.NewClusterFrom(snap, geoserve.ClusterConfig{
			Shards:      r.cfg.Shards,
			QueueBudget: r.cfg.QueueBudget,
		}, prev)
		if err != nil {
			return fmt.Errorf("replica: epoch %d does not split into %d shards: %w", m.Epoch, r.cfg.Shards, err)
		}
		next.cluster = clu
		target = clu
	} else {
		var prev *geoserve.Engine
		if cur := r.cur.Load(); cur != nil {
			prev = cur.engine
		}
		next.engine = geoserve.NewEngineFrom(snap, prev)
		target = next.engine
	}
	if err := r.warmupFn(target, m.Epoch); err != nil {
		r.warmupFails.Add(1)
		r.warmupFailed.Store(true)
		return fmt.Errorf("replica: epoch %d failed warm-up, keeping epoch %d: %w", m.Epoch, r.Epoch(), err)
	}
	if next.cluster != nil {
		next.handler = geoserve.NewObservedClusterHandler(next.cluster, r.obs)
	} else {
		next.handler = geoserve.NewObservedHandler(next.engine, r.obs)
	}
	r.warmupFailed.Store(false)
	next.since = r.now()
	r.cur.Store(next)
	r.swaps.Add(1)
	r.mu.Lock()
	r.lastErr = ""
	r.mu.Unlock()
	return nil
}

// selfProbe is the default warm-up gate: a seeded sample of the
// snapshot's own interval index (prefix rows and exact addresses) must
// answer through the engine exactly as the snapshot's row data says,
// with coordinates inside the valid range, and an address outside
// allocated space must come back unmapped. The probe set is drawn from
// the candidate snapshot itself, so it scales with the index and never
// needs external fixtures.
func (r *Replica) selfProbe(engine warmTarget, epoch uint64) error {
	if r.cfg.WarmupProbes < 0 {
		return nil
	}
	snap := engine.Snapshot()
	mappers := snap.Mappers()
	if len(mappers) == 0 {
		return errors.New("snapshot names no mappers")
	}
	prefixes, exact := snap.Prefixes(), snap.ExactIPs()
	rr := rng.New(r.cfg.Seed ^ int64(epoch))
	var ips []uint32
	for i := 0; i < r.cfg.WarmupProbes && len(prefixes) > 0; i++ {
		ips = append(ips, prefixes[rr.Intn(len(prefixes))]+uint32(rr.Intn(256)))
	}
	for i := 0; i < r.cfg.WarmupProbes && len(exact) > 0; i++ {
		ips = append(ips, exact[rr.Intn(len(exact))])
	}
	for _, ip := range ips {
		for mi, name := range mappers {
			got := engine.Lookup(mi, ip)
			want := snap.Lookup(mi, ip)
			if got != want {
				return fmt.Errorf("probe %d via %s: engine answered %+v, snapshot row says %+v", ip, name, got, want)
			}
			if got.Found && !got.Loc.Valid() {
				return fmt.Errorf("probe %d via %s: location %v out of range", ip, name, got.Loc)
			}
		}
	}
	// One probe from the top of the address space, where no interval
	// normally lives: engine and snapshot must agree there too, so a
	// misaligned index can't claim unallocated space.
	if got, want := engine.Lookup(0, 0xFFFFFFFE), snap.Lookup(0, 0xFFFFFFFE); got != want {
		return fmt.Errorf("out-of-space probe: engine answered %+v, snapshot row says %+v", got, want)
	}
	return nil
}

func (r *Replica) fetchManifest(ctx context.Context) (Manifest, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", r.cfg.BuilderURL+"/v1/replication/manifest", nil)
	if err != nil {
		return Manifest{}, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return Manifest{}, fmt.Errorf("replica: manifest fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Manifest{}, fmt.Errorf("replica: manifest fetch: status %d", resp.StatusCode)
	}
	var m Manifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("replica: manifest decode: %w", err)
	}
	if m.Epoch == 0 || m.SizeBytes <= 0 {
		return Manifest{}, fmt.Errorf("replica: manifest names epoch %d size %d", m.Epoch, m.SizeBytes)
	}
	return m, nil
}

// fetchBlob downloads the manifest's snapshot file, resuming a
// matching partial download via a Range request. On failure the bytes
// read so far are retained for the next attempt; on success the
// partial is consumed.
func (r *Replica) fetchBlob(ctx context.Context, m Manifest) ([]byte, error) {
	r.mu.Lock()
	if r.partialEpoch != m.Epoch || r.partialDigest != m.Digest {
		r.partial, r.partialEpoch, r.partialDigest = nil, m.Epoch, m.Digest
	}
	buf := r.partial
	r.mu.Unlock()

	url := fmt.Sprintf("%s/v1/replication/snapshot/%d", r.cfg.BuilderURL, m.Epoch)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	resuming := len(buf) > 0 && int64(len(buf)) < m.SizeBytes
	if resuming {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", len(buf)))
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: snapshot fetch: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resuming && resp.StatusCode == http.StatusPartialContent:
		r.resumes.Add(1)
	case resp.StatusCode == http.StatusOK:
		buf = buf[:0] // full body (server ignored or was not sent Range)
	default:
		if resp.StatusCode == http.StatusNotFound && resp.Header.Get(goneHeader) != "" {
			return nil, fmt.Errorf("%w: snapshot epoch %d pruned", ErrEpochGone, m.Epoch)
		}
		return nil, fmt.Errorf("replica: snapshot fetch: status %d", resp.StatusCode)
	}

	// Read at most what the manifest promised (+1 to detect overruns);
	// whatever lands in buf survives this attempt for resumption.
	limited := io.LimitReader(resp.Body, m.SizeBytes-int64(len(buf))+1)
	chunk := make([]byte, 64<<10)
	for {
		n, rerr := limited.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			r.savePartial(buf)
			return nil, fmt.Errorf("replica: snapshot fetch interrupted at %d/%d bytes: %w",
				len(buf), m.SizeBytes, rerr)
		}
	}
	if int64(len(buf)) < m.SizeBytes {
		r.savePartial(buf)
		return nil, fmt.Errorf("%w: snapshot fetch delivered %d/%d bytes",
			snapfile.ErrTruncated, len(buf), m.SizeBytes)
	}
	if int64(len(buf)) > m.SizeBytes {
		r.dropPartial()
		return nil, fmt.Errorf("replica: snapshot fetch overran the manifest size %d", m.SizeBytes)
	}
	r.dropPartial()
	return buf, nil
}

func (r *Replica) savePartial(buf []byte) {
	r.mu.Lock()
	r.partial = buf
	r.mu.Unlock()
}

func (r *Replica) dropPartial() {
	r.mu.Lock()
	r.partial = nil
	r.mu.Unlock()
}

// Drain flips the replica into its draining state: /healthz starts
// failing (so routers stop planning new work here), queries already in
// flight — and any that race in before the routers notice — are still
// answered from the current epoch. The process exits once InFlight
// reaches zero (cmd/geoserved couples this to http.Server.Shutdown).
func (r *Replica) Drain() { r.draining.Store(true) }

// Draining reports whether Drain has been called.
func (r *Replica) Draining() bool { return r.draining.Load() }

// InFlight is the number of query requests currently being served.
func (r *Replica) InFlight() int64 { return r.inflight.Load() }

// Status is the replica's /statusz shape: replication state plus the
// serving engine's own metrics when an epoch is loaded.
type Status struct {
	// State is "empty" until the first verified epoch, then "serving";
	// "draining" after Drain regardless of epoch.
	State      string `json:"state"`
	BuilderURL string `json:"builder_url"`
	Epoch      uint64 `json:"epoch"`
	Digest     string `json:"digest,omitempty"`
	// StaleEpoch is true when an epoch is being served but the builder
	// has not been reached within StaleAfter — the replica keeps
	// serving, degraded and saying so.
	StaleEpoch bool `json:"stale_epoch"`
	// SecondsSinceContact is time since the last successful manifest
	// read (-1 before the first).
	SecondsSinceContact float64 `json:"seconds_since_contact"`
	Fetches             uint64  `json:"fetches"`
	FetchFailures       uint64  `json:"fetch_failures"`
	Resumes             uint64  `json:"resumes"`
	Swaps               uint64  `json:"swaps"`
	// DeltaSyncs counts epochs reached by applying a .snapdelta;
	// DeltaFallbacks counts delta attempts that demoted to a full
	// fetch.
	DeltaSyncs     uint64 `json:"delta_syncs"`
	DeltaFallbacks uint64 `json:"delta_fallbacks"`
	// WarmupFailed is true while the most recent install attempt was
	// rejected by the warm-up self-probe (the epoch before it is still
	// serving); WarmupFailures counts rejections over the process
	// lifetime.
	// EpochGoneRaces counts retention-window races (the epoch a
	// manifest named was pruned before we fetched it) recovered by
	// re-reading the manifest; they are not fetch failures.
	EpochGoneRaces uint64 `json:"epoch_gone_races"`
	WarmupFailed   bool   `json:"warmup_failed"`
	WarmupFailures uint64 `json:"warmup_failures"`
	InFlight       int64  `json:"in_flight"`
	LastError      string `json:"last_error,omitempty"`

	Serving *geoserve.Status `json:"serving,omitempty"`
	// ServingCluster replaces Serving when the replica runs in
	// cluster mode (Config.Shards > 1).
	ServingCluster *geoserve.ClusterStatus `json:"serving_cluster,omitempty"`
}

// Status snapshots the replica's replication state.
func (r *Replica) Status() Status {
	cur := r.cur.Load()
	st := Status{
		State:               "empty",
		BuilderURL:          r.cfg.BuilderURL,
		SecondsSinceContact: -1,
		Fetches:             r.fetches.Load(),
		FetchFailures:       r.failures.Load(),
		Resumes:             r.resumes.Load(),
		Swaps:               r.swaps.Load(),
		DeltaSyncs:          r.deltaSyncs.Load(),
		DeltaFallbacks:      r.deltaFallbacks.Load(),
		EpochGoneRaces:      r.epochGone.Load(),
		WarmupFailed:        r.warmupFailed.Load(),
		WarmupFailures:      r.warmupFails.Load(),
		InFlight:            r.inflight.Load(),
	}
	r.mu.Lock()
	st.LastError = r.lastErr
	r.mu.Unlock()
	sinceContact := time.Duration(-1)
	if last := r.lastContact.Load(); last > 0 {
		sinceContact = r.now().Sub(time.Unix(0, last))
		st.SecondsSinceContact = sinceContact.Seconds()
	}
	if cur != nil {
		st.State = "serving"
		st.Epoch = cur.epoch
		st.Digest = cur.digest
		st.StaleEpoch = sinceContact < 0 || sinceContact > r.cfg.StaleAfter
		if cur.cluster != nil {
			cs := cur.cluster.Status()
			st.ServingCluster = &cs
		} else {
			es := cur.engine.Status()
			st.Serving = &es
		}
	}
	if r.draining.Load() {
		st.State = "draining"
	}
	return st
}

// Handler serves the full geoserve HTTP API from the current epoch,
// tagging every answer with X-Geo-Epoch/X-Geo-Digest response headers
// (epoch and handler publish atomically together, so the tag always
// matches the snapshot that answered). /statusz and /healthz are
// replication-aware; before the first verified epoch every other path
// answers 503 with a Retry-After.
func (r *Replica) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/statusz":
			writeJSON(w, r.Status())
			return
		case "/healthz":
			r.serveHealthz(w)
			return
		// The observability endpoints answer from the replica's own
		// bundle even before the first sync (and identically after —
		// the per-epoch handler mounts the same registry and ring), so
		// a replica that cannot sync is still scrapeable.
		case "/metrics":
			r.obs.Metrics.Handler().ServeHTTP(w, req)
			return
		case "/debug/tracez":
			r.obs.Traces.Handler().ServeHTTP(w, req)
			return
		}
		cur := r.cur.Load()
		if cur == nil {
			w.Header().Set("Retry-After", "1")
			httpJSONError(w, http.StatusServiceUnavailable, "no snapshot epoch loaded yet (builder %s)", r.cfg.BuilderURL)
			return
		}
		// Queries are answered even while draining — the health probe
		// steers new traffic away, but anything that raced in still
		// gets a real answer from the current epoch.
		r.inflight.Add(1)
		defer r.inflight.Add(-1)
		w.Header().Set("X-Geo-Epoch", strconv.FormatUint(cur.epoch, 10))
		w.Header().Set("X-Geo-Digest", cur.digest)
		cur.handler.ServeHTTP(w, req)
	})
}

// healthzBody is what the router's health probe reads.
type healthzBody struct {
	Status     string                `json:"status"`
	Epoch      uint64                `json:"epoch"`
	Digest     string                `json:"digest,omitempty"`
	StaleEpoch bool                  `json:"stale_epoch"`
	Snapshot   geoserve.SnapshotInfo `json:"snapshot,omitzero"`
}

func (r *Replica) serveHealthz(w http.ResponseWriter) {
	st := r.Status()
	body := healthzBody{Status: "ok", Epoch: st.Epoch, Digest: st.Digest, StaleEpoch: st.StaleEpoch}
	cur := r.cur.Load()
	if cur != nil {
		if cur.cluster != nil {
			body.Snapshot = cur.cluster.Status().Snapshot
		} else {
			body.Snapshot = cur.engine.Status().Snapshot
		}
	}
	switch {
	case r.draining.Load():
		// Draining fails the probe on purpose: routers eject this
		// replica and the remaining in-flight work finishes untouched.
		body.Status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	case cur == nil:
		body.Status = "empty"
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, body)
}
