package replica

import (
	"io"
	"net/http"
	"testing"

	"geonet/internal/analysis"
	"geonet/internal/faultinject"
	"geonet/internal/geo"
	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

// makeSnapshot assembles a small synthetic snapshot through
// geoserve.FromColumns so fleet tests need no pipeline run. Content is
// deterministic in (seed, nPrefixes, nASNs).
func makeSnapshot(tb testing.TB, seed int64, nPrefixes, nASNs int) *geoserve.Snapshot {
	tb.Helper()
	r := rng.New(seed)
	c := &geoserve.Columns{
		Build:   geoserve.BuildInfo{Seed: seed, Scale: 0.5, Label: "synthetic"},
		Mappers: []string{"alpha", "beta"},
	}
	for i := 0; i < nPrefixes; i++ {
		base := uint32(10<<24) + uint32(i)<<8
		c.Prefixes = append(c.Prefixes, base)
		c.IPs = append(c.IPs, base+1, base+2)
	}
	for i := 0; i < nASNs; i++ {
		c.ASNs = append(c.ASNs, int32(100+i))
	}
	rows := len(c.Prefixes) + len(c.IPs)
	for m := 0; m < len(c.Mappers); m++ {
		a := geoserve.AnswerColumns{
			Lat:    make([]float64, rows),
			Lon:    make([]float64, rows),
			Radius: make([]float64, rows),
			ASN:    make([]int32, rows),
			Method: make([]uint8, rows),
			Found:  make([]uint8, rows),
		}
		for i := 0; i < rows; i++ {
			if nASNs > 0 {
				a.ASN[i] = c.ASNs[r.Intn(nASNs)]
			}
			if r.Bool(0.8) {
				a.Found[i] = 1
				a.Method[i] = uint8(1 + r.Intn(4))
				a.Lat[i] = r.Float64()*180 - 90
				a.Lon[i] = r.Float64()*360 - 180
				a.Radius[i] = r.Float64() * 500
			}
		}
		c.Answers = append(c.Answers, a)
		fps := make([]analysis.ASFootprint, nASNs)
		for i := range fps {
			if r.Bool(0.7) {
				fps[i] = analysis.ASFootprint{
					ASN:        int(c.ASNs[i]),
					Interfaces: 1 + r.Intn(50),
					Locations:  1 + r.Intn(10),
					Degree:     r.Intn(20),
					Centroid:   geo.Pt(r.Float64()*180-90, r.Float64()*360-180),
					AreaSqMi:   r.Float64() * 1e6,
					RadiusMi:   r.Float64() * 500,
				}
			}
		}
		c.Footprints = append(c.Footprints, fps)
	}
	snap, err := geoserve.FromColumns(c)
	if err != nil {
		tb.Fatalf("FromColumns: %v", err)
	}
	return snap
}

// fleetMux routes in-memory requests by URL host, so a whole
// builder/replica/router fleet shares one faultinject.Local transport.
type fleetMux map[string]http.Handler

func (f fleetMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := r.URL.Host
	if host == "" {
		host = r.Host
	}
	h, ok := f[host]
	if !ok {
		http.Error(w, "no such host "+host, http.StatusBadGateway)
		return
	}
	h.ServeHTTP(w, r)
}

// localClient wires a client through an in-memory fault-injecting
// transport over the fleet mux.
func localClient(f fleetMux, decide faultinject.Decider) (*http.Client, *faultinject.Transport) {
	tr := faultinject.New(faultinject.Local{Handler: f}, decide)
	return &http.Client{Transport: tr}, tr
}

// get fetches a URL through the client and returns status + body.
func get(tb testing.TB, client *http.Client, url string) (int, string) {
	tb.Helper()
	resp, err := client.Get(url)
	if err != nil {
		tb.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(b)
}
