package replica

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBackoffDefaults(t *testing.T) {
	p := BackoffPolicy{}.withDefaults()
	if p.Base != 250*time.Millisecond || p.Cap != 30*time.Second || p.Jitter != 0.2 {
		t.Fatalf("defaults %+v", p)
	}
	if j := (BackoffPolicy{Jitter: -3}.withDefaults()).Jitter; j != 0 {
		t.Fatalf("negative jitter normalised to %v, want 0", j)
	}
	if j := (BackoffPolicy{Jitter: 5}.withDefaults()).Jitter; j != 1 {
		t.Fatalf("oversized jitter normalised to %v, want 1", j)
	}
}

// TestBackoffSchedule pins the jitter-free schedule: doubling from
// Base, saturating at Cap.
func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name string
		p    BackoffPolicy
		want []time.Duration
	}{
		{
			name: "doubles to cap",
			p:    BackoffPolicy{Base: 100 * time.Millisecond, Cap: 1600 * time.Millisecond, Jitter: -1},
			want: []time.Duration{
				100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
				800 * time.Millisecond, 1600 * time.Millisecond,
				1600 * time.Millisecond, 1600 * time.Millisecond,
			},
		},
		{
			name: "cap below base clamps immediately",
			p:    BackoffPolicy{Base: time.Second, Cap: 300 * time.Millisecond, Jitter: -1},
			want: []time.Duration{300 * time.Millisecond, 300 * time.Millisecond},
		},
		{
			name: "deep failure count saturates instead of overflowing",
			p:    BackoffPolicy{Base: time.Millisecond, Cap: time.Second, Jitter: -1},
			want: func() []time.Duration {
				out := make([]time.Duration, 200)
				d := time.Millisecond
				for i := range out {
					out[i] = d
					if d < time.Second {
						d *= 2
					}
					if d > time.Second {
						d = time.Second
					}
				}
				return out
			}(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBackoff(tc.p, 1)
			for i, want := range tc.want {
				if got := b.Next(); got != want {
					t.Fatalf("delay %d = %v, want %v", i, got, want)
				}
			}
		})
	}
}

// TestBackoffJitterBounds checks every jittered delay lands in
// [d*(1-J), d*(1+J)] of the deterministic schedule and never exceeds
// the cap.
func TestBackoffJitterBounds(t *testing.T) {
	p := BackoffPolicy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Jitter: 0.5}
	for seed := int64(1); seed <= 20; seed++ {
		b := NewBackoff(p, seed)
		ideal := NewBackoff(BackoffPolicy{Base: p.Base, Cap: p.Cap, Jitter: -1}, 1)
		for i := 0; i < 12; i++ {
			d, base := b.Next(), ideal.Next()
			lo := time.Duration(float64(base) * (1 - p.Jitter))
			hi := time.Duration(float64(base) * (1 + p.Jitter))
			if hi > p.Cap {
				hi = p.Cap
			}
			if d < lo || d > hi {
				t.Fatalf("seed %d delay %d = %v outside [%v, %v]", seed, i, d, lo, hi)
			}
		}
	}
}

// TestBackoffDeterminism pins that the schedule is a pure function of
// (policy, seed, fail count).
func TestBackoffDeterminism(t *testing.T) {
	p := BackoffPolicy{Base: 50 * time.Millisecond, Cap: 10 * time.Second, Jitter: 0.3}
	seq := func(seed int64) []time.Duration {
		b := NewBackoff(p, seed)
		out := make([]time.Duration, 16)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b, c := seq(42), seq(42), seq(43)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 delay %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical jittered schedules")
	}
}

// TestBackoffConcurrentCancellation runs a fleet of replicas whose
// builder never answers, so every Run loop is parked deep inside a
// long backoff sleep, then cancels all their contexts at once: each
// loop must return the context error promptly instead of serving out
// its multi-minute delay, and the per-replica Backoff state must stay
// isolated under the concurrency (the race detector patrols this test
// in CI).
func TestBackoffConcurrentCancellation(t *testing.T) {
	client, _ := localClient(fleetMux{}, nil) // no hosts: every sync fails fast
	const fleet = 16
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, fleet)
	var started sync.WaitGroup
	for i := 0; i < fleet; i++ {
		started.Add(1)
		rep := New(Config{
			BuilderURL: "http://nowhere",
			Client:     client,
			Seed:       int64(i + 1),
			Backoff:    BackoffPolicy{Base: 10 * time.Minute, Cap: time.Hour},
		})
		go func() {
			started.Done()
			errs <- rep.Run(ctx)
		}()
	}
	started.Wait()
	// Give every loop time to fail its first sync and enter the sleep.
	time.Sleep(20 * time.Millisecond)
	cancel()
	deadline := time.After(5 * time.Second)
	for i := 0; i < fleet; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("replica %d returned %v, want context.Canceled", i, err)
			}
		case <-deadline:
			t.Fatalf("%d of %d replicas still asleep in backoff after cancellation", fleet-i, fleet)
		}
	}
}

// TestBackoffCancelledMidSync pins the other race: cancellation landing
// while SyncOnce itself is in flight (not in the sleep) still surfaces
// the context error rather than a retry.
func TestBackoffCancelledMidSync(t *testing.T) {
	pub := NewPublisher()
	if _, err := pub.Publish(makeSnapshot(t, 9, 20, 6)); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if swapped, err := rep.SyncOnce(ctx); swapped || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sync: swapped=%v err=%v", swapped, err)
	}
	if err := rep.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with dead context returned %v", err)
	}
}

func TestBackoffReset(t *testing.T) {
	b := NewBackoff(BackoffPolicy{Base: 100 * time.Millisecond, Cap: time.Minute, Jitter: -1}, 1)
	for i := 0; i < 4; i++ {
		b.Next()
	}
	if b.Fails() != 4 {
		t.Fatalf("fails %d, want 4", b.Fails())
	}
	b.Reset()
	if b.Fails() != 0 {
		t.Fatalf("fails after reset %d", b.Fails())
	}
	if d := b.Next(); d != 100*time.Millisecond {
		t.Fatalf("first delay after reset %v, want base", d)
	}
}
