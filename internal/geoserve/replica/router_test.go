package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"

	"geonet/internal/faultinject"
	"geonet/internal/geoserve"
)

// fleet is a one-process builder + replicas + router wired over
// in-memory transports.
type fleet struct {
	pub      *Publisher
	replicas []*Replica
	router   *Router
	// client talks to any node; its transport injects decide's faults.
	client *http.Client
	tr     *faultinject.Transport
}

// repURL names replica i in the fleet mux.
func repURL(i int) string { return fmt.Sprintf("http://rep%d", i) }

// newFleet builds a publisher, n synced replicas and a probed router.
// decide injects faults on every exchange in the fleet, including the
// test's own requests.
func newFleet(tb testing.TB, n int, snap *geoserve.Snapshot, decide faultinject.Decider) *fleet {
	tb.Helper()
	f := &fleet{pub: NewPublisher()}
	mux := fleetMux{"builder": f.pub.Handler()}
	f.client, f.tr = localClient(mux, decide)
	for i := 0; i < n; i++ {
		rep := New(Config{BuilderURL: "http://builder", Client: f.client})
		f.replicas = append(f.replicas, rep)
		mux[fmt.Sprintf("rep%d", i)] = rep.Handler()
	}
	var urls []string
	for i := range f.replicas {
		urls = append(urls, repURL(i))
	}
	f.router = NewRouter(RouterConfig{Replicas: urls, Client: f.client, FailThreshold: 1})
	mux["router"] = f.router.Handler()
	if snap != nil {
		if _, err := f.pub.Publish(snap); err != nil {
			tb.Fatal(err)
		}
		f.syncAll(tb)
		f.router.ProbeOnce(context.Background())
	}
	return f
}

func (f *fleet) syncAll(tb testing.TB) {
	tb.Helper()
	for i, rep := range f.replicas {
		if _, err := rep.SyncOnce(context.Background()); err != nil {
			tb.Fatalf("replica %d sync: %v", i, err)
		}
	}
}

func postBatch(tb testing.TB, client *http.Client, url, mapper string, ips []string) (*http.Response, string) {
	tb.Helper()
	body, _ := json.Marshal(struct {
		Mapper string   `json:"mapper"`
		IPs    []string `json:"ips"`
	}{mapper, ips})
	resp, err := client.Post(url+"/v1/locate/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatalf("POST %s batch: %v", url, err)
	}
	defer resp.Body.Close()
	var sb bytes.Buffer
	sb.ReadFrom(resp.Body)
	return resp, sb.String()
}

// batchIPs picks addresses spanning exact hits, prefix hits and misses.
func batchIPs(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			out = append(out, fmt.Sprintf("10.%d.0.1", i%20))
		case 1:
			out = append(out, fmt.Sprintf("10.%d.0.200", i%20))
		default:
			out = append(out, fmt.Sprintf("99.1.%d.9", i))
		}
	}
	return out
}

func TestRouterShedsWithNoHealthyReplica(t *testing.T) {
	f := newFleet(t, 2, nil, nil) // nothing published, replicas unsynced, members unprobed
	resp, err := f.client.Get("http://router/v1/locate?ip=10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// Probing unsynced replicas (healthz 503) must not admit them.
	f.router.ProbeOnce(context.Background())
	if st := f.router.Status(); st.HealthyReplicas != 0 || st.Sheds != 1 {
		t.Fatalf("status %+v", st)
	}
}

// TestRouterMatchesEngineByteForByte pins that routed answers — single
// lookups and scattered batches — are byte-identical to one engine
// over the same snapshot.
func TestRouterMatchesEngineByteForByte(t *testing.T) {
	snap := makeSnapshot(t, 11, 40, 10)
	f := newFleet(t, 3, snap, nil)
	direct := geoserve.NewHandler(geoserve.NewEngine(snap))
	dc, _ := localClient(fleetMux{"direct": direct}, nil)

	for _, q := range []string{
		"/v1/locate?ip=10.0.0.1",
		"/v1/locate?ip=10.7.0.9&mapper=beta",
		"/v1/locate?ip=1.2.3.4",
		"/v1/locate?ip=not-an-ip",
		"/v1/prefixes",
		"/v1/as/105/footprint",
	} {
		rCode, rBody := get(t, f.client, "http://router"+q)
		dCode, dBody := get(t, dc, "http://direct"+q)
		if rCode != dCode || rBody != dBody {
			t.Fatalf("%s diverges: router (%d) %q vs engine (%d) %q", q, rCode, rBody, dCode, dBody)
		}
	}

	// Batches scatter over all three replicas and merge in order.
	for _, n := range []int{1, 2, 3, 7, 50} {
		ips := batchIPs(n)
		resp, rBody := postBatch(t, f.client, "http://router", "alpha", ips)
		dResp, dBody := postBatch(t, dc, "http://direct", "alpha", ips)
		if resp.StatusCode != dResp.StatusCode || rBody != dBody {
			t.Fatalf("batch n=%d diverges:\nrouter (%d) %s\nengine (%d) %s", n, resp.StatusCode, rBody, dResp.StatusCode, dBody)
		}
		if e := resp.Header.Get("X-Geo-Epoch"); e != "1" {
			t.Fatalf("batch epoch header %q", e)
		}
	}

	// Error shapes pass through byte-identically too.
	resp, rBody := postBatch(t, f.client, "http://router", "nope", batchIPs(4))
	dResp, dBody := postBatch(t, dc, "http://direct", "nope", batchIPs(4))
	if resp.StatusCode != http.StatusBadRequest || resp.StatusCode != dResp.StatusCode || rBody != dBody {
		t.Fatalf("unknown-mapper batch: router (%d) %q vs engine (%d) %q", resp.StatusCode, rBody, dResp.StatusCode, dBody)
	}
	if st := f.router.Status(); st.Retries != 0 || st.Sheds != 0 {
		t.Fatalf("healthy fleet needed retries: %+v", st)
	}
}

// TestRouterEjectsAndReadmits pins the health lifecycle: a dead
// replica is ejected after FailThreshold failures and readmitted by
// the first healthy probe, with no failed answer either way.
func TestRouterEjectsAndReadmits(t *testing.T) {
	snap := makeSnapshot(t, 12, 30, 8)
	var down atomic.Bool
	decide := func(_ int, req *http.Request) faultinject.Fault {
		if down.Load() && req.URL.Host == "rep1" {
			return faultinject.Fault{Drop: true, FlipBit: -1}
		}
		return faultinject.Clean
	}
	f := newFleet(t, 2, snap, decide)
	direct := geoserve.NewHandler(geoserve.NewEngine(snap))
	dc, _ := localClient(fleetMux{"direct": direct}, nil)
	_, want := get(t, dc, "http://direct/v1/locate?ip=10.2.0.1")

	down.Store(true)
	// Every request keeps succeeding with the right answer: the router
	// retries onto rep0 when a forward hits the dead rep1 (ejecting it
	// at FailThreshold=1), after which rep1 is out of the plan.
	for i := 0; i < 8; i++ {
		code, body := get(t, f.client, "http://router/v1/locate?ip=10.2.0.1")
		if code != 200 || body != want {
			t.Fatalf("request %d during outage: %d %q", i, code, body)
		}
	}
	f.router.ProbeOnce(context.Background())
	st := f.router.Status()
	if st.HealthyReplicas != 1 {
		t.Fatalf("status during outage %+v", st)
	}
	var r1 RouterReplica
	for _, m := range st.Replicas {
		if m.URL == repURL(1) {
			r1 = m
		}
	}
	if r1.Healthy || r1.Ejections != 1 {
		t.Fatalf("rep1 row %+v, want ejected once", r1)
	}

	down.Store(false)
	f.router.ProbeOnce(context.Background())
	st = f.router.Status()
	if st.HealthyReplicas != 2 {
		t.Fatalf("status after recovery %+v", st)
	}
	for _, m := range st.Replicas {
		if m.URL == repURL(1) && (!m.Healthy || m.Readmissions != 1) {
			t.Fatalf("rep1 not readmitted: %+v", m)
		}
	}
	for i := 0; i < 4; i++ {
		if code, body := get(t, f.client, "http://router/v1/locate?ip=10.2.0.1"); code != 200 || body != want {
			t.Fatalf("request %d after recovery: %d %q", i, code, body)
		}
	}
}

// TestRouterBatchNeverBlendsEpochs pins batch epoch consistency: when
// part of the fleet has swapped to a new epoch, a batch is answered
// entirely by one epoch — never a mix — even when the router's view is
// stale.
func TestRouterBatchNeverBlendsEpochs(t *testing.T) {
	snap1 := makeSnapshot(t, 13, 30, 8)
	snap2 := makeSnapshot(t, 14, 34, 9)
	f := newFleet(t, 2, snap1, nil)

	// Epoch 2 appears and only replica 1 picks it up; the router still
	// believes both replicas hold epoch 1.
	if _, err := f.pub.Publish(snap2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.replicas[1].SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	ips := batchIPs(12)
	resp, body := postBatch(t, f.client, "http://router", "alpha", ips)
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	// The answer must be exactly one engine's output: either all
	// epoch 1 (rep0) or all epoch 2 (rep1), matching its epoch header.
	dc, _ := localClient(fleetMux{
		"e1": geoserve.NewHandler(geoserve.NewEngine(snap1)),
		"e2": geoserve.NewHandler(geoserve.NewEngine(snap2)),
	}, nil)
	_, want1 := postBatch(t, dc, "http://e1", "alpha", ips)
	_, want2 := postBatch(t, dc, "http://e2", "alpha", ips)
	switch epoch := resp.Header.Get("X-Geo-Epoch"); epoch {
	case "1":
		if body != want1 {
			t.Fatalf("epoch-1 batch body diverges:\n%s\nvs\n%s", body, want1)
		}
	case "2":
		if body != want2 {
			t.Fatalf("epoch-2 batch body diverges:\n%s\nvs\n%s", body, want2)
		}
	default:
		t.Fatalf("epoch header %q", epoch)
	}
	if body == want1 && body == want2 {
		t.Fatal("test is vacuous: both snapshots answer identically")
	}

	// After a probe refreshes the view, batches settle on epoch 2 —
	// served solely by the replica that holds it.
	f.router.ProbeOnce(context.Background())
	resp, body = postBatch(t, f.client, "http://router", "alpha", ips)
	if e := resp.Header.Get("X-Geo-Epoch"); e != "2" || body != want2 {
		t.Fatalf("post-probe batch epoch %q", e)
	}
	// And once every replica catches up, scatter resumes at epoch 2.
	f.syncAll(t)
	f.router.ProbeOnce(context.Background())
	resp, body = postBatch(t, f.client, "http://router", "alpha", ips)
	if e := resp.Header.Get("X-Geo-Epoch"); e != "2" || body != want2 {
		t.Fatalf("converged batch epoch %q", e)
	}
	if st := f.router.Status(); st.Epoch != 2 || st.HealthyReplicas != 2 {
		t.Fatalf("converged status %+v", st)
	}
}
