package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"geonet/internal/geoserve"
	"geonet/internal/obs"
)

// RouterConfig shapes the fan-out tier.
type RouterConfig struct {
	// Replicas are the replica base URLs (no trailing slash).
	Replicas []string
	// Client performs probes and forwards; nil means http.DefaultClient.
	Client *http.Client
	// ProbeInterval is the health-probe cadence under Run (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive failures eject a replica
	// (default 2). Ejected replicas are probed and readmitted on the
	// first healthy answer.
	FailThreshold int
	// RetryAfter is the Retry-After hint on shed (503) responses
	// (default 1s).
	RetryAfter time.Duration
	// RequestTimeout bounds one forwarded attempt — a replica that
	// stalls past it is treated as failed and the request moves on
	// (default 5s).
	RequestTimeout time.Duration
	// RetryBudget caps the global retry token pool (default 16). Every
	// retry spends a whole token, every success earns a tenth back, so
	// under sustained failure at most ~10% of traffic is retried and a
	// retry storm can't amplify an outage.
	RetryBudget int
	// BreakerThreshold is how many consecutive request failures open a
	// member's circuit breaker (default 3); while open the member gets
	// no traffic even if probes still like it.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker excludes its member
	// before a single half-open trial request may close it again
	// (default 5s).
	BreakerCooldown time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 16
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// member is the router's view of one replica. All mutable fields are
// guarded by Router.mu.
type member struct {
	url     string
	healthy bool
	// admitted means the member has been healthy at least once, so a
	// later recovery counts as a readmission rather than first contact.
	admitted     bool
	epoch        uint64
	digest       string
	consecFails  int
	requests     uint64
	failures     uint64
	ejections    uint64
	readmissions uint64
	// inflight and ewmaMs feed least-outstanding-requests planning:
	// inflight counts forwards this router currently has open against
	// the member, ewmaMs smooths its observed response latency.
	inflight int
	ewmaMs   float64
	ewmaSet  bool
	// breakerFails counts consecutive request failures (probes don't
	// touch it); at BreakerThreshold the breaker opens and
	// breakerOpenSince records when. Zero time means closed.
	breakerFails     int
	breakerOpenSince time.Time
	breakerTrips     uint64
}

// Router fans geoserve lookups over a fleet of replicas. It probes
// each replica's /healthz, ejects members after FailThreshold
// consecutive failures and readmits them on the next healthy probe,
// and routes every request to replicas serving one agreed epoch — a
// batch is scattered across replicas only at that epoch and replies
// carrying any other epoch force a replan, so one answer set never
// blends snapshots. When no healthy replica holds a complete epoch the
// router sheds with 503 + Retry-After rather than degrade silently.
//
// Within the plan, traffic goes to the member with the fewest
// outstanding requests (latency EWMA breaking ties, round-robin after
// that), each attempt runs under RequestTimeout, retries draw from a
// global token budget, and a per-member circuit breaker sits on top of
// probe-driven ejection so a replica that answers probes but fails
// requests still loses its traffic.
//
// Members start unprobed (unhealthy); call Run or ProbeOnce before
// serving.
type Router struct {
	cfg     RouterConfig
	members []*member
	mu      sync.Mutex
	rr      atomic.Uint64

	// budgetTenths holds the retry budget in tenths of a token; it
	// starts full so a cold router retries freely.
	budgetTenths atomic.Int64
	budgetDenied atomic.Uint64

	draining atomic.Bool
	inflight atomic.Int64

	requests atomic.Uint64
	batches  atomic.Uint64
	retries  atomic.Uint64
	sheds    atomic.Uint64
	start    time.Time
	// now is stubbed in tests (breaker cooldowns).
	now func() time.Time
	obs *obs.Observability
}

// NewRouter builds a router over the configured replica URLs.
func NewRouter(cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	r := &Router{cfg: cfg, start: time.Now(), now: time.Now, obs: obs.NewObservability("router")}
	r.budgetTenths.Store(int64(cfg.RetryBudget) * 10)
	for _, u := range cfg.Replicas {
		r.members = append(r.members, &member{url: u})
	}
	r.registerMetrics()
	return r
}

// Obs exposes the router's observability bundle so cmd/geoserved can
// mount the same registry and trace ring on a debug listener.
func (r *Router) Obs() *obs.Observability { return r.obs }

// registerMetrics exposes the router's fleet-view families: request
// and retry-budget counters, the plan (epoch, healthy members), and a
// per-member section labeled by replica URL. The per-member readers
// take r.mu briefly at scrape time; nothing ever calls back into the
// registry under that lock, so lock order stays registry → router.
func (r *Router) registerMetrics() {
	reg := r.obs.Metrics
	reg.CounterFunc("geoserve_router_requests_total",
		"Requests forwarded (single lookups and misc paths).", nil, r.requests.Load)
	reg.CounterFunc("geoserve_router_batches_total",
		"Batch requests scattered over the fleet.", nil, r.batches.Load)
	reg.CounterFunc("geoserve_router_retries_total",
		"Retry tokens spent.", nil, r.retries.Load)
	reg.CounterFunc("geoserve_router_sheds_total",
		"Requests shed with 503 because no plan existed.", nil, r.sheds.Load)
	reg.CounterFunc("geoserve_router_budget_denied_total",
		"Retries refused because the token budget ran dry.", nil, r.budgetDenied.Load)
	reg.GaugeFunc("geoserve_router_retry_budget",
		"Retry tokens left in the global pool.", nil,
		func() float64 { return float64(r.budgetTenths.Load()) / 10 })
	reg.GaugeFunc("geoserve_router_plan_epoch",
		"The epoch the router currently routes to (0 = no plan).", nil,
		func() float64 { epoch, _ := r.plan(); return float64(epoch) })
	reg.GaugeFunc("geoserve_router_healthy_replicas",
		"Routable members holding the plan epoch.", nil,
		func() float64 { _, ms := r.plan(); return float64(len(ms)) })
	reg.GaugeFunc("geoserve_router_draining",
		"1 after Drain is called.", nil,
		func() float64 {
			if r.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("geoserve_router_inflight",
		"Requests the router is currently serving.", nil,
		func() float64 { return float64(r.inflight.Load()) })
	for _, m := range r.members {
		labels := obs.Labels{{Key: "replica", Value: m.url}}
		reg.GaugeFunc("geoserve_router_replica_healthy",
			"1 while the member passes health probes.", labels,
			r.memberGauge(m, func(m *member) float64 {
				if m.healthy {
					return 1
				}
				return 0
			}))
		reg.GaugeFunc("geoserve_router_replica_inflight",
			"Forwards currently outstanding against the member.", labels,
			r.memberGauge(m, func(m *member) float64 { return float64(m.inflight) }))
		reg.GaugeFunc("geoserve_router_replica_latency_ewma_ms",
			"Smoothed observed response latency.", labels,
			r.memberGauge(m, func(m *member) float64 { return m.ewmaMs }))
		reg.GaugeFunc("geoserve_router_replica_breaker_state",
			"Circuit breaker state: 0 closed, 1 half-open, 2 open.", labels,
			r.memberGauge(m, func(m *member) float64 {
				switch r.breakerStateLocked(m) {
				case "open":
					return 2
				case "half-open":
					return 1
				}
				return 0
			}))
		reg.GaugeFunc("geoserve_router_replica_epoch",
			"The epoch the member last reported.", labels,
			r.memberGauge(m, func(m *member) float64 { return float64(m.epoch) }))
		reg.CounterFunc("geoserve_router_replica_requests_total",
			"Requests the member served.", labels,
			r.memberCounter(m, func(m *member) uint64 { return m.requests }))
		reg.CounterFunc("geoserve_router_replica_failures_total",
			"Probe and request failures against the member.", labels,
			r.memberCounter(m, func(m *member) uint64 { return m.failures }))
		reg.CounterFunc("geoserve_router_replica_ejections_total",
			"Times the member was ejected from the plan.", labels,
			r.memberCounter(m, func(m *member) uint64 { return m.ejections }))
		reg.CounterFunc("geoserve_router_replica_readmissions_total",
			"Times the member recovered into the plan.", labels,
			r.memberCounter(m, func(m *member) uint64 { return m.readmissions }))
		reg.CounterFunc("geoserve_router_replica_breaker_trips_total",
			"Times the member's circuit breaker opened.", labels,
			r.memberCounter(m, func(m *member) uint64 { return m.breakerTrips }))
	}
}

func (r *Router) memberGauge(m *member, read func(*member) float64) func() float64 {
	return func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return read(m)
	}
}

func (r *Router) memberCounter(m *member, read func(*member) uint64) func() uint64 {
	return func() uint64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return read(m)
	}
}

// ensureTrace is the edge mint: it adopts the request's X-Geo-Trace ID
// or mints a fresh one, writing it back onto the request headers so
// every downstream hop (forward clones them, batchCall copies it)
// carries the same ID.
func (r *Router) ensureTrace(req *http.Request) *obs.Trace {
	id, ok := obs.ParseTraceID(req.Header.Get(obs.TraceHeader))
	if !ok {
		id = obs.NewTraceID()
		req.Header.Set(obs.TraceHeader, id.String())
	}
	return r.obs.Traces.Start(id)
}

// Drain flips the router into its draining state: /healthz starts
// failing so upstream balancers stop sending work, while requests
// already here (or racing in) are still served normally.
func (r *Router) Drain() { r.draining.Store(true) }

// Draining reports whether Drain has been called.
func (r *Router) Draining() bool { return r.draining.Load() }

// InFlight is the number of requests the router is currently serving.
func (r *Router) InFlight() int64 { return r.inflight.Load() }

// Run probes the fleet once immediately, then on every ProbeInterval
// tick, until ctx ends.
func (r *Router) Run(ctx context.Context) error {
	r.ProbeOnce(ctx)
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			r.ProbeOnce(ctx)
		}
	}
}

// ProbeOnce health-checks every member concurrently and applies
// ejection/readmission.
func (r *Router) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range r.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			r.probe(ctx, m)
		}(m)
	}
	wg.Wait()
}

func (r *Router) probe(ctx context.Context, m *member) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", m.url+"/healthz", nil)
	if err != nil {
		r.noteFailure(m)
		return
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		r.noteFailure(m)
		return
	}
	defer resp.Body.Close()
	var body healthzBody
	if resp.StatusCode != http.StatusOK ||
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body) != nil ||
		body.Epoch == 0 {
		r.noteFailure(m)
		return
	}
	r.noteHealthy(m, body.Epoch, body.Digest)
}

// noteFailure records a failed probe or request and applies ejection.
func (r *Router) noteFailure(m *member) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteFailureLocked(m)
}

func (r *Router) noteFailureLocked(m *member) {
	m.failures++
	m.consecFails++
	if m.healthy && m.consecFails >= r.cfg.FailThreshold {
		m.healthy = false
		m.ejections++
	}
}

// noteHealthy records a healthy probe: epoch refresh + readmission.
func (r *Router) noteHealthy(m *member, epoch uint64, digest string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m.consecFails = 0
	m.epoch = epoch
	if digest != "" {
		m.digest = digest
	}
	if !m.healthy {
		m.healthy = true
		if m.admitted {
			m.readmissions++
		}
	}
	m.admitted = true
}

// noteServed records a successful forwarded request and refreshes the
// member's observed epoch from the response headers (it does not
// readmit — only probes do that, so one lucky response can't bounce a
// flapping member back in ahead of its health check).
func (r *Router) noteServed(m *member, resp *http.Response) {
	epoch, _ := strconv.ParseUint(resp.Header.Get("X-Geo-Epoch"), 10, 64)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.requests++
	m.consecFails = 0
	if epoch > 0 {
		m.epoch = epoch
		if d := resp.Header.Get("X-Geo-Digest"); d != "" {
			m.digest = d
		}
	}
}

// startCall marks one outstanding request against the member.
func (r *Router) startCall(m *member) {
	r.mu.Lock()
	m.inflight++
	r.mu.Unlock()
}

// finishCall settles one outstanding request: a success folds its
// latency into the EWMA and closes the breaker, a failure advances the
// breaker (tripping it at BreakerThreshold, or re-arming the cooldown
// when a half-open trial fails) and applies ejection.
func (r *Router) finishCall(m *member, d time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m.inflight--
	if ok {
		ms := float64(d) / float64(time.Millisecond)
		if !m.ewmaSet {
			m.ewmaMs, m.ewmaSet = ms, true
		} else {
			m.ewmaMs = 0.8*m.ewmaMs + 0.2*ms
		}
		m.breakerFails = 0
		m.breakerOpenSince = time.Time{}
		return
	}
	m.breakerFails++
	if m.breakerOpenSince.IsZero() {
		if m.breakerFails >= r.cfg.BreakerThreshold {
			m.breakerOpenSince = r.now()
			m.breakerTrips++
		}
	} else {
		// A failed half-open trial re-arms the cooldown in full.
		m.breakerOpenSince = r.now()
	}
	r.noteFailureLocked(m)
}

// breakerStateLocked derives the member's breaker state from its
// opened-at stamp and the cooldown.
func (r *Router) breakerStateLocked(m *member) string {
	switch {
	case m.breakerOpenSince.IsZero():
		return "closed"
	case r.now().Sub(m.breakerOpenSince) < r.cfg.BreakerCooldown:
		return "open"
	default:
		return "half-open"
	}
}

// routableLocked reports whether the member may receive traffic:
// probe-healthy, breaker not open, and — in the half-open state — only
// as the single trial (no other request outstanding).
func (r *Router) routableLocked(m *member) bool {
	if !m.healthy {
		return false
	}
	switch r.breakerStateLocked(m) {
	case "open":
		return false
	case "half-open":
		return m.inflight == 0
	}
	return true
}

// plan picks the serving epoch — the highest epoch any routable member
// holds — and the routable members holding it. An empty slice means
// the router must shed.
func (r *Router) plan() (uint64, []*member) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var epoch uint64
	for _, m := range r.members {
		if r.routableLocked(m) && m.epoch > epoch {
			epoch = m.epoch
		}
	}
	if epoch == 0 {
		return 0, nil
	}
	var ms []*member
	for _, m := range r.members {
		if r.routableLocked(m) && m.epoch == epoch {
			ms = append(ms, m)
		}
	}
	return epoch, ms
}

// orderByLoad returns the plan's members cheapest-first: fewest
// outstanding requests, then lowest latency EWMA, with a rotating
// starting point so equally-loaded members share traffic round-robin
// instead of piling onto the first.
func (r *Router) orderByLoad(ms []*member) []*member {
	out := make([]*member, len(ms))
	rot := int(r.rr.Add(1)-1) % len(ms)
	for i := range ms {
		out[i] = ms[(i+rot)%len(ms)]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].inflight != out[j].inflight {
			return out[i].inflight < out[j].inflight
		}
		return out[i].ewmaMs < out[j].ewmaMs
	})
	return out
}

// allowRetry spends one retry token; false means the global budget is
// exhausted and the caller must give up rather than amplify.
func (r *Router) allowRetry() bool {
	for {
		cur := r.budgetTenths.Load()
		if cur < 10 {
			r.budgetDenied.Add(1)
			return false
		}
		if r.budgetTenths.CompareAndSwap(cur, cur-10) {
			r.retries.Add(1)
			return true
		}
	}
}

// earnBudget refunds a tenth of a retry token on a served request.
func (r *Router) earnBudget() {
	max := int64(r.cfg.RetryBudget) * 10
	for {
		cur := r.budgetTenths.Load()
		if cur >= max {
			return
		}
		if r.budgetTenths.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}

// shed refuses the request with 503 + Retry-After. The body quotes the
// originating trace ID so a shed client can hand operators the exact
// request to look up in /debug/tracez.
func (r *Router) shed(w http.ResponseWriter, tr *obs.Trace) {
	r.sheds.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int((r.cfg.RetryAfter+time.Second-1)/time.Second)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	body := struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id,omitempty"`
	}{Error: "no healthy replica holds a complete epoch"}
	if id := tr.TraceID(); id != 0 {
		body.TraceID = id.String()
	}
	json.NewEncoder(w).Encode(body)
}

// Handler serves the geoserve API by delegation: single lookups
// forward to the least-loaded replica at the plan epoch (retrying
// others under the budget), batches scatter over the plan's replicas
// and merge, and /statusz//healthz report the router's own fleet view.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Status())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		epoch, ms := r.plan()
		body := struct {
			Status          string `json:"status"`
			Epoch           uint64 `json:"epoch"`
			HealthyReplicas int    `json:"healthy_replicas"`
		}{"ok", epoch, len(ms)}
		switch {
		case r.draining.Load():
			body.Status = "draining"
			w.WriteHeader(http.StatusServiceUnavailable)
		case len(ms) == 0:
			body.Status = "degraded"
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("POST /v1/locate/batch", func(w http.ResponseWriter, req *http.Request) {
		r.inflight.Add(1)
		defer r.inflight.Add(-1)
		tr := r.ensureTrace(req)
		w.Header().Set(obs.TraceHeader, tr.TraceID().String())
		r.serveBatch(w, req, tr)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		r.inflight.Add(1)
		defer r.inflight.Add(-1)
		tr := r.ensureTrace(req)
		w.Header().Set(obs.TraceHeader, tr.TraceID().String())
		r.forward(w, req, tr)
	})
	r.obs.Mount(mux)
	return mux
}

// forward proxies one request to the least-loaded replica at the plan
// epoch, trying others on transport failure, timeout, or replica-side
// 5xx as long as the retry budget holds.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, tr *obs.Trace) {
	r.requests.Add(1)
	var body []byte
	if req.Body != nil {
		body, _ = io.ReadAll(req.Body)
	}
	for attempt := 0; attempt <= len(r.members); attempt++ {
		if attempt > 0 && !r.allowRetry() {
			break
		}
		_, ms := r.plan()
		if len(ms) == 0 {
			break
		}
		m := r.orderByLoad(ms)[0]
		done, err := r.forwardOnce(w, req, m, body, tr)
		if err != nil {
			httpJSONError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if done {
			return
		}
	}
	r.shed(w, tr)
}

// forwardOnce runs one attempt against m under the per-request
// deadline. done=false means "retry elsewhere"; a non-nil error is a
// local request-construction failure worth a 500.
func (r *Router) forwardOnce(w http.ResponseWriter, req *http.Request, m *member, body []byte, tr *obs.Trace) (done bool, err error) {
	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()
	out, err := http.NewRequestWithContext(ctx, req.Method, m.url+req.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	// The clone carries X-Geo-Trace: ensureTrace stamped it onto the
	// incoming request, so the replica joins the same trace.
	out.Header = req.Header.Clone()
	r.startCall(m)
	t0 := time.Now()
	resp, err := r.cfg.Client.Do(out)
	if err != nil {
		r.finishCall(m, 0, false)
		tr.Span("router.forward", t0, obs.A("replica", m.url), obs.A("outcome", "transport-error"))
		return false, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		r.finishCall(m, 0, false)
		tr.Span("router.forward", t0, obs.A("replica", m.url), obs.AInt("status", resp.StatusCode), obs.A("outcome", "retry"))
		return false, nil
	}
	// Buffer the whole body before declaring success: a replica that
	// returned headers and then stalled mid-body (or hit the deadline)
	// is a failed attempt to retry elsewhere, never a truncated answer
	// passed to the client.
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		r.finishCall(m, 0, false)
		tr.Span("router.forward", t0, obs.A("replica", m.url), obs.A("outcome", "truncated"))
		return false, nil
	}
	r.finishCall(m, time.Since(t0), true)
	r.earnBudget()
	r.noteServed(m, resp)
	tr.Span("router.forward", t0, obs.A("replica", m.url), obs.AInt("status", resp.StatusCode))
	copyResponse(w, resp, respBody)
	return true, nil
}

func copyResponse(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, h := range []string{"Content-Type", "X-Geo-Epoch", "X-Geo-Digest"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// batchPart is one scattered sub-batch's outcome.
type batchPart struct {
	m       *member
	status  int
	ctype   string
	epoch   uint64
	mapper  string
	results []json.RawMessage
	raw     []byte
	err     error
}

// serveBatch answers a batch by scattering contiguous IP chunks over
// the plan's replicas (cheapest-loaded first) and merging the
// sub-results in order. Every sub-response must carry the plan epoch;
// one that does not (a replica swapped mid-batch) forces a replan, so
// the merged answer set is always the product of exactly one epoch.
// Request validation mirrors geoserve's handler byte for byte, and
// merged bodies are rebuilt from the sub-responses' raw result
// objects, so a routed batch is byte-identical to a single-engine
// batch over the same snapshot.
func (r *Router) serveBatch(w http.ResponseWriter, req *http.Request, tr *obs.Trace) {
	r.batches.Add(1)
	var in struct {
		Mapper string   `json:"mapper"`
		IPs    []string `json:"ips"`
	}
	if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
		httpJSONError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(in.IPs) == 0 {
		httpJSONError(w, http.StatusBadRequest, "empty ips")
		return
	}
	if len(in.IPs) > geoserve.MaxBatch {
		httpJSONError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(in.IPs), geoserve.MaxBatch)
		return
	}
	for _, ipStr := range in.IPs {
		if _, err := geoserve.ParseIPv4(ipStr); err != nil {
			httpJSONError(w, http.StatusBadRequest, "bad ip %q", ipStr)
			return
		}
	}

	const planAttempts = 3
	t0 := time.Now()
	for attempt := 0; attempt < planAttempts; attempt++ {
		if attempt > 0 && !r.allowRetry() {
			break
		}
		epoch, ms := r.plan()
		if len(ms) == 0 {
			break
		}
		order := r.orderByLoad(ms)
		chunks := splitChunks(in.IPs, len(order))
		parts := make([]batchPart, len(chunks))
		var wg sync.WaitGroup
		for i := range chunks {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				parts[i] = r.batchCall(req.Context(), order[i%len(order)], in.Mapper, chunks[i], tr)
			}(i)
		}
		wg.Wait()

		replan := false
		for _, p := range parts {
			switch {
			case p.err != nil:
				replan = true
			case p.status >= 500:
				replan = true
			case p.status != http.StatusOK:
				// A client-side rejection (unknown mapper, shed shard):
				// pass the first one through untouched.
				if p.ctype != "" {
					w.Header().Set("Content-Type", p.ctype)
				}
				w.WriteHeader(p.status)
				w.Write(p.raw)
				return
			case p.epoch != epoch:
				// Replica swapped between planning and answering; its
				// answers belong to another snapshot. Refresh our view
				// and replan — never blend epochs into one answer set.
				r.noteHealthy(p.m, p.epoch, "")
				replan = true
			}
		}
		if replan {
			continue
		}
		merged := struct {
			Mapper  string            `json:"mapper"`
			Results []json.RawMessage `json:"results"`
		}{Mapper: parts[0].mapper, Results: make([]json.RawMessage, 0, len(in.IPs))}
		for _, p := range parts {
			merged.Results = append(merged.Results, p.results...)
		}
		w.Header().Set("X-Geo-Epoch", strconv.FormatUint(epoch, 10))
		tr.Span("router.batch", t0,
			obs.AInt("n", len(in.IPs)),
			obs.AInt("chunks", len(chunks)),
			obs.AInt("attempt", attempt),
			obs.A("epoch", strconv.FormatUint(epoch, 10)))
		writeJSON(w, merged)
		return
	}
	tr.Span("router.batch", t0, obs.AInt("n", len(in.IPs)), obs.A("outcome", "shed"))
	r.shed(w, tr)
}

func (r *Router) batchCall(ctx context.Context, m *member, mapper string, ips []string, tr *obs.Trace) batchPart {
	part := batchPart{m: m}
	body, err := json.Marshal(struct {
		Mapper string   `json:"mapper"`
		IPs    []string `json:"ips"`
	}{mapper, ips})
	if err != nil {
		part.err = err
		return part
	}
	ctx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", m.url+"/v1/locate/batch", bytes.NewReader(body))
	if err != nil {
		part.err = err
		return part
	}
	req.Header.Set("Content-Type", "application/json")
	if id := tr.TraceID(); id != 0 {
		req.Header.Set(obs.TraceHeader, id.String())
	}
	r.startCall(m)
	t0 := time.Now()
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		r.finishCall(m, 0, false)
		part.err = err
		return part
	}
	defer resp.Body.Close()
	part.status = resp.StatusCode
	part.ctype = resp.Header.Get("Content-Type")
	part.epoch, _ = strconv.ParseUint(resp.Header.Get("X-Geo-Epoch"), 10, 64)
	part.raw, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		r.finishCall(m, 0, false)
		part.err = err
		return part
	}
	if resp.StatusCode >= 500 {
		r.finishCall(m, 0, false)
		return part
	}
	r.finishCall(m, time.Since(t0), true)
	if resp.StatusCode == http.StatusOK {
		var sub struct {
			Mapper  string            `json:"mapper"`
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(part.raw, &sub); err != nil {
			part.err = fmt.Errorf("replica %s: bad batch body: %w", m.url, err)
			return part
		}
		part.mapper, part.results = sub.Mapper, sub.Results
		r.earnBudget()
		r.noteServed(m, resp)
	}
	return part
}

// splitChunks splits ips into at most k contiguous, order-preserving
// chunks of near-equal size.
func splitChunks(ips []string, k int) [][]string {
	if k > len(ips) {
		k = len(ips)
	}
	chunks := make([][]string, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*len(ips)/k, (i+1)*len(ips)/k
		chunks = append(chunks, ips[lo:hi])
	}
	return chunks
}

// RouterReplica is one member's row in the router's /statusz.
type RouterReplica struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	Epoch        uint64 `json:"epoch"`
	Digest       string `json:"digest,omitempty"`
	ConsecFails  int    `json:"consec_fails"`
	Requests     uint64 `json:"requests"`
	Failures     uint64 `json:"failures"`
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
	// InFlight and LatencyMsEWMA are the load signals behind
	// least-outstanding routing.
	InFlight      int     `json:"in_flight"`
	LatencyMsEWMA float64 `json:"latency_ms_ewma"`
	// BreakerState is "closed", "open", or "half-open".
	BreakerState string `json:"breaker_state"`
	BreakerTrips uint64 `json:"breaker_trips"`
}

// RouterStatus is the router's /statusz shape.
type RouterStatus struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Epoch           uint64  `json:"epoch"`
	HealthyReplicas int     `json:"healthy_replicas"`
	Draining        bool    `json:"draining"`
	InFlight        int64   `json:"in_flight"`
	Requests        uint64  `json:"requests"`
	Batches         uint64  `json:"batches"`
	Retries         uint64  `json:"retries"`
	Sheds           uint64  `json:"sheds"`
	// RetryBudget is the tokens left in the global retry pool;
	// BudgetDenied counts retries refused because it ran dry.
	RetryBudget  float64         `json:"retry_budget"`
	BudgetDenied uint64          `json:"budget_denied"`
	Replicas     []RouterReplica `json:"replicas"`
}

// Status snapshots the router's fleet view and counters.
func (r *Router) Status() RouterStatus {
	epoch, ms := r.plan()
	st := RouterStatus{
		UptimeSeconds:   time.Since(r.start).Seconds(),
		Epoch:           epoch,
		HealthyReplicas: len(ms),
		Draining:        r.draining.Load(),
		InFlight:        r.inflight.Load(),
		Requests:        r.requests.Load(),
		Batches:         r.batches.Load(),
		Retries:         r.retries.Load(),
		Sheds:           r.sheds.Load(),
		RetryBudget:     float64(r.budgetTenths.Load()) / 10,
		BudgetDenied:    r.budgetDenied.Load(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		st.Replicas = append(st.Replicas, RouterReplica{
			URL:           m.url,
			Healthy:       m.healthy,
			Epoch:         m.epoch,
			Digest:        m.digest,
			ConsecFails:   m.consecFails,
			Requests:      m.requests,
			Failures:      m.failures,
			Ejections:     m.ejections,
			Readmissions:  m.readmissions,
			InFlight:      m.inflight,
			LatencyMsEWMA: m.ewmaMs,
			BreakerState:  r.breakerStateLocked(m),
			BreakerTrips:  m.breakerTrips,
		})
	}
	return st
}
