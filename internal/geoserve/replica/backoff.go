package replica

import (
	"time"

	"geonet/internal/rng"
)

// BackoffPolicy shapes the retry schedule replicas use between failed
// syncs: exponential doubling from Base, capped at Cap, with
// symmetric multiplicative jitter so a fleet of replicas that lost the
// builder together does not stampede it together.
type BackoffPolicy struct {
	// Base is the first delay (default 250ms).
	Base time.Duration
	// Cap bounds every delay (default 30s).
	Cap time.Duration
	// Jitter spreads each delay uniformly over [d*(1-J), d*(1+J)]
	// (default 0.2; 0 disables, values cap at 1).
	Jitter float64
}

func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.Base <= 0 {
		p.Base = 250 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 30 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Backoff is one consumer's schedule: Next returns the delay before
// the next retry (doubling, capped, jittered by the seeded stream —
// deterministic per seed, so tests pin the exact schedule), and Reset
// rearms after a success. Not safe for concurrent use.
type Backoff struct {
	policy BackoffPolicy
	rng    *rng.Stream
	fails  int
}

// NewBackoff builds a schedule from the policy (zero fields take the
// defaults above) and a jitter seed.
func NewBackoff(policy BackoffPolicy, seed int64) *Backoff {
	return &Backoff{policy: policy.withDefaults(), rng: rng.New(seed)}
}

// Fails reports consecutive failures since the last Reset.
func (b *Backoff) Fails() int { return b.fails }

// Next records a failure and returns the delay before the next try.
func (b *Backoff) Next() time.Duration {
	d := b.policy.Base
	// Doubling with shift-overflow protection: past 62 doublings (or
	// whenever the cap is hit) the exponential phase is over.
	for i := 0; i < b.fails && d < b.policy.Cap; i++ {
		d *= 2
	}
	if d > b.policy.Cap {
		d = b.policy.Cap
	}
	b.fails++
	if j := b.policy.Jitter; j > 0 {
		// Uniform in [1-j, 1+j]; the draw happens even at the cap so
		// the schedule stays a pure function of (policy, seed, fails).
		d = time.Duration(float64(d) * (1 - j + 2*j*b.rng.Float64()))
	}
	if d > b.policy.Cap {
		d = b.policy.Cap
	}
	return d
}

// Reset rearms the schedule after a success.
func (b *Backoff) Reset() { b.fails = 0 }
