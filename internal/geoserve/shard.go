package geoserve

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// maxShards bounds a cluster's shard count so batch scatter scratch can
// store shard ids in one byte.
const maxShards = 256

// shardData is one shard's immutable view of a parent snapshot: the
// contiguous run of the sorted /24 interval index it owns plus the
// exact-address answers falling inside its address range. The slices
// alias the parent snapshot's backing arrays (no copies), so splitting
// a snapshot is O(shards·log n) and a shard lookup is byte-equivalent
// to the unsharded lookup by construction — the sub-slices partition
// the full sorted arrays at the same cut points.
type shardData struct {
	snap *Snapshot // parent; digest, mappers and footprints live here
	id   int
	// The shard owns addresses in [lo, hi] (inclusive); the ranges of a
	// split partition the whole 32-bit space, so every address has
	// exactly one owner.
	lo, hi uint32

	prefixes  []uint32
	prefixAns [][]entry
	ips       []uint32
	ipAns     [][]entry

	// pOff and ipOff are the cut points of this shard's sub-slices in
	// the parent arrays, so a shard-local index maps back to a parent
	// columnar row (the wire slab and JSON cache are row-addressed).
	pOff, ipOff int
}

// lookup mirrors Snapshot.lookup over the shard's sub-slices: exact
// answer for a known interface address, prefix-level answer inside an
// allocated /24, zero-valued miss otherwise. Allocation-free.
func (d *shardData) lookup(mapper int, ip uint32) (Answer, method) {
	if mapper < 0 || mapper >= len(d.snap.mappers) {
		return Answer{IP: ip}, methodNone
	}
	if i, ok := search32(d.ips, ip); ok {
		e := &d.ipAns[mapper][i]
		return e.answer(ip, true), e.method
	}
	if i, ok := search32(d.prefixes, ip&^0xff); ok {
		e := &d.prefixAns[mapper][i]
		return e.answer(ip, false), e.method
	}
	return Answer{IP: ip}, methodNone
}

// owns reports whether ip falls in the shard's address range.
func (d *shardData) owns(ip uint32) bool { return ip >= d.lo && ip <= d.hi }

// lookupRow mirrors Snapshot.lookupRow over the shard's sub-slices,
// returning the PARENT snapshot's columnar row (or -1): the shard's
// cut offsets translate local indices, so wire records and cached JSON
// tails are shared with the unsharded paths.
func (d *shardData) lookupRow(ip uint32) int {
	if i, ok := search32(d.ips, ip); ok {
		return len(d.snap.prefixes) + d.ipOff + i
	}
	if i, ok := search32(d.prefixes, ip&^0xff); ok {
		return d.pOff + i
	}
	return -1
}

// wireAnswer writes ip's 36-byte wire answer at dst out of the parent
// snapshot's record slab, like Snapshot.wireAnswer but searching only
// this shard's sub-slices.
func (d *shardData) wireAnswer(w *wireState, mapper int, ip uint32, dst []byte) method {
	binary.LittleEndian.PutUint32(dst, ip)
	row := d.lookupRow(ip)
	if row < 0 || mapper < 0 || mapper >= len(d.snap.mappers) {
		copy(dst[4:WireAnswerSize], zeroWireRecord[:])
		return methodNone
	}
	copy(dst[4:WireAnswerSize], w.slabs[mapper][row*wireRecordSize:])
	return method(dst[4+wireOffMethod])
}

// splitSnapshot cuts the snapshot's sorted /24 interval index into n
// contiguous runs balanced by interval count (runs differ by at most
// one prefix), and splits the exact-address index at the same address
// boundaries. starts[i] is the lower bound of shard i's address range;
// starts[0] is 0 and the last shard extends to 0xFFFFFFFF, so the
// ranges partition the address space and routing is one binary search.
func splitSnapshot(snap *Snapshot, n int) (datas []*shardData, starts []uint32, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("geoserve: shard count %d < 1", n)
	}
	if n > maxShards {
		return nil, nil, fmt.Errorf("geoserve: shard count %d exceeds max %d", n, maxShards)
	}
	if n > len(snap.prefixes) {
		return nil, nil, fmt.Errorf("geoserve: %d shards over %d /24 intervals", n, len(snap.prefixes))
	}
	starts = make([]uint32, n)
	for i := 1; i < n; i++ {
		starts[i] = snap.prefixes[i*len(snap.prefixes)/n]
	}
	datas = make([]*shardData, n)
	for i := 0; i < n; i++ {
		pLo, pHi := i*len(snap.prefixes)/n, (i+1)*len(snap.prefixes)/n
		hi := uint32(0xFFFFFFFF)
		if i+1 < n {
			hi = starts[i+1] - 1
		}
		// Exact addresses in [starts[i], hi] — lower bounds in the
		// sorted ips array.
		ipLo, _ := search32(snap.ips, starts[i])
		ipHi := len(snap.ips)
		if i+1 < n {
			ipHi, _ = search32(snap.ips, starts[i+1])
		}
		d := &shardData{
			snap:      snap,
			id:        i,
			lo:        starts[i],
			hi:        hi,
			prefixes:  snap.prefixes[pLo:pHi],
			prefixAns: make([][]entry, len(snap.mappers)),
			ips:       snap.ips[ipLo:ipHi],
			ipAns:     make([][]entry, len(snap.mappers)),
			pOff:      pLo,
			ipOff:     ipLo,
		}
		for m := range snap.mappers {
			d.prefixAns[m] = snap.prefixAns[m][pLo:pHi]
			d.ipAns[m] = snap.ipAns[m][ipLo:ipHi]
		}
		datas[i] = d
	}
	return datas, starts, nil
}

// shardIndexOf routes an address to its owning shard: the greatest i
// with starts[i] <= ip (starts[0] is always 0).
func shardIndexOf(starts []uint32, ip uint32) int {
	lo, hi := 0, len(starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if starts[mid] <= ip {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// shardState is the carryable part of a shard: its serving metrics and
// shed count. It lives in clusterMetrics rather than the Shard itself
// so NewClusterFrom can hand a replacement cluster the previous one's
// counters — epochs advancing by delta apply must not reset per-shard
// accounting (the same continuity NewEngineFrom gives a single engine).
type shardState struct {
	m    metrics
	shed atomic.Uint64
}

// Shard is one independently hot-swappable serving engine inside a
// Cluster: its own atomic data pointer (readers never block on a
// swap), its own metrics, and its own in-flight budget for batch work
// (the load-shedding unit).
type Shard struct {
	data atomic.Pointer[shardData]
	st   *shardState
	// inflight counts batch tasks currently queued or running on this
	// shard; tryAcquire sheds when it would exceed budget.
	inflight atomic.Int64
	budget   int64
}

// tryAcquire reserves one in-flight batch slot, shedding (and counting
// the shed) when the shard's queue is already at budget.
func (sh *Shard) tryAcquire() bool {
	if sh.inflight.Add(1) > sh.budget {
		sh.inflight.Add(-1)
		sh.st.shed.Add(1)
		return false
	}
	return true
}

func (sh *Shard) release() { sh.inflight.Add(-1) }

// serveGroup answers this shard's members of a scattered batch: it
// scans the shard-id scratch, looks up every address it owns on the
// epoch-consistent data d, and records the sub-batch in one metrics
// update (per-lookup latency is the sub-batch average, so batch
// serving never pays a clock read per address).
func (sh *Shard) serveGroup(d *shardData, mapper int, ips []uint32, shardOf []uint8, out []Answer) {
	t0 := time.Now()
	var counts [numMethods]uint32
	me := uint8(d.id)
	n := uint64(0)
	for j, ip := range ips {
		if shardOf[j] != me {
			continue
		}
		a, code := d.lookup(mapper, ip)
		out[j] = a
		counts[code]++
		n++
	}
	sh.st.m.recordBatch(mapper, &counts, n, time.Since(t0), t0)
}

// serveGroupWire is serveGroup for the binary wire path: it writes
// this shard's members of a scattered batch as fixed-width answers at
// their disjoint positions in out.
func (sh *Shard) serveGroupWire(d *shardData, w *wireState, mapper int, ips []uint32, shardOf []uint8, out []byte) {
	t0 := time.Now()
	var counts [numMethods]uint32
	me := uint8(d.id)
	n := uint64(0)
	for j, ip := range ips {
		if shardOf[j] != me {
			continue
		}
		code := d.wireAnswer(w, mapper, ip, out[j*WireAnswerSize:])
		counts[code]++
		n++
	}
	sh.st.m.recordBatch(mapper, &counts, n, time.Since(t0), t0)
}
