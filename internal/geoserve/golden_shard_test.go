package geoserve_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geonet/internal/core"
	"geonet/internal/geoserve"
)

// invarianceProbes is the deterministic address sweep the
// shard-invariance digest runs over: every exact interface address,
// three offsets in every allocated /24 (base, a mid host, the top
// host), and misses below, between and above the index.
func invarianceProbes(snap *geoserve.Snapshot) []uint32 {
	prefixes := snap.Prefixes()
	probes := snap.ExactIPs()
	for _, base := range prefixes {
		probes = append(probes, base, base+127, base+255)
	}
	probes = append(probes, 0, 1, prefixes[0]-1, prefixes[len(prefixes)-1]+256,
		0xF0000001, 0xFFFFFFFF)
	return probes
}

// answersDigest hashes every answer the lookup function gives over the
// probe sweep under every mapper, in a fixed serialisation — the
// "digest of all answers" the shard-count invariance is pinned by.
func answersDigest(snap *geoserve.Snapshot, lookup func(mapper int, ip uint32) geoserve.Answer) string {
	h := sha256.New()
	probes := invarianceProbes(snap)
	for m := range snap.Mappers() {
		for _, ip := range probes {
			a := lookup(m, ip)
			fmt.Fprintf(h, "%d %d %v %v %.17g %.17g %s %d %.17g\n",
				m, a.IP, a.Found, a.Exact, a.Loc.Lat, a.Loc.Lon, a.Method, a.ASN, a.RadiusMi)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// batchAnswersDigest is answersDigest through the scatter-gather batch
// path, in fixed-size chunks, so batch serving is pinned to the same
// constant as single lookups.
func batchAnswersDigest(t *testing.T, snap *geoserve.Snapshot, c *geoserve.Cluster) string {
	t.Helper()
	h := sha256.New()
	probes := invarianceProbes(snap)
	out := make([]geoserve.Answer, 1024)
	for m := range snap.Mappers() {
		for lo := 0; lo < len(probes); lo += 1024 {
			chunk := probes[lo:min(lo+1024, len(probes))]
			digest, err := c.LookupBatch(m, chunk, out[:len(chunk)])
			if err != nil {
				t.Fatal(err)
			}
			if digest != snap.Digest() {
				t.Fatalf("batch served digest %s, want %s", digest, snap.Digest())
			}
			for i, ip := range chunk {
				a := out[i]
				fmt.Fprintf(h, "%d %d %v %v %.17g %.17g %s %d %.17g\n",
					m, ip, a.Found, a.Exact, a.Loc.Lat, a.Loc.Lon, a.Method, a.ASN, a.RadiusMi)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// clusterTranscript renders a fixed request set through a handler:
// single locates under both mappers (hits, generics, misses, an
// unknown-mapper 400), scatter-gather batches (default and explicit
// mapper, plus a bad-address 400), an AS footprint, healthz, and the
// /v1/prefixes body by hash. Every transcripted byte must be identical
// for any shard count and for the unsharded engine.
func clusterTranscript(snap *geoserve.Snapshot, h http.Handler, p *core.Pipeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digest %s\n", snap.Digest())

	ips := publicIfaceIPs(p)
	var singles []string
	for _, ip := range []uint32{ips[0], ips[len(ips)/3], ips[2*len(ips)/3], ips[len(ips)-1]} {
		singles = append(singles, geoserve.FormatIPv4(ip))
	}
	prefixes := snap.Prefixes()
	for _, base := range []uint32{prefixes[0], prefixes[len(prefixes)/2]} {
		for off := uint32(255); ; off-- {
			if _, taken := p.Internet.ByIP[base+off]; !taken {
				singles = append(singles, geoserve.FormatIPv4(base+off))
				break
			}
			if off == 0 {
				break
			}
		}
	}
	singles = append(singles, "240.0.0.1")

	get := func(target string) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
		fmt.Fprintf(&b, "GET %s -> %d\n%s", target, w.Code, w.Body.String())
	}
	post := func(target, body string) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", target, strings.NewReader(body)))
		fmt.Fprintf(&b, "POST %s %s -> %d\n%s", target, body, w.Code, w.Body.String())
	}

	for _, mapper := range snap.Mappers() {
		for _, probe := range singles {
			get("/v1/locate?ip=" + probe + "&mapper=" + mapper)
		}
	}
	get("/v1/locate?ip=" + singles[0] + "&mapper=nope")

	// A batch spanning the whole index (and so, sharded, every shard):
	// 48 probes evenly sampled from the invariance sweep.
	sweep := invarianceProbes(snap)
	var batch []string
	for i := 0; i < 48; i++ {
		batch = append(batch, `"`+geoserve.FormatIPv4(sweep[i*len(sweep)/48])+`"`)
	}
	post("/v1/locate/batch", `{"ips":[`+strings.Join(batch, ",")+`]}`)
	post("/v1/locate/batch", `{"mapper":"edgescape","ips":[`+strings.Join(batch[:8], ",")+`]}`)
	post("/v1/locate/batch", `{"ips":["1.2.3.999"]}`)

	if a := snap.Lookup(0, ips[0]); a.ASN != 0 {
		get(fmt.Sprintf("/v1/as/%d/footprint", a.ASN))
	}
	get("/healthz")

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/prefixes", nil))
	fmt.Fprintf(&b, "GET /v1/prefixes -> %d sha256:%x (%d bytes)\n",
		w.Code, sha256.Sum256(w.Body.Bytes()), w.Body.Len())
	return b.String()
}

// TestGoldenShardInvariance pins the headline tentpole invariant: for
// shard counts {1, 2, 3, 8} the digest of all answers (single-lookup
// and scatter-gather batch paths both) and a full HTTP transcript are
// byte-identical to the unsharded engine — cluster topology, like
// worker count before it, must never move a single byte. Regenerate
// with
//
//	go test ./internal/geoserve -run TestGoldenShardInvariance -update
func TestGoldenShardInvariance(t *testing.T) {
	p, snap := fixture(t)

	engine := geoserve.NewEngine(snap)
	wantDigest := answersDigest(snap, engine.Lookup)
	wantTranscript := clusterTranscript(snap, geoserve.NewHandler(engine), p)

	for _, shards := range []int{1, 2, 3, 8} {
		c, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if got := answersDigest(snap, c.Lookup); got != wantDigest {
			t.Errorf("shards=%d: single-lookup answers digest %s != unsharded %s", shards, got, wantDigest)
		}
		if got := batchAnswersDigest(t, snap, c); got != wantDigest {
			t.Errorf("shards=%d: batch answers digest %s != unsharded %s", shards, got, wantDigest)
		}
		if got := clusterTranscript(snap, geoserve.NewClusterHandler(c), p); got != wantTranscript {
			t.Errorf("shards=%d: HTTP transcript differs from the unsharded engine.\ngot:\n%s\nwant:\n%s",
				shards, got, wantTranscript)
		}
	}

	golden := fmt.Sprintf("answers %s\n%s", wantDigest, wantTranscript)
	path := filepath.Join("testdata", "golden_cluster.txt")
	if *update {
		if err := os.WriteFile(path, []byte(golden), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(golden))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if golden != string(want) {
		t.Errorf("cluster serving golden drifted from %s.\nIf intentional, regenerate with -update and review the diff.\ngot:\n%s", path, golden)
	}
}
