package geoserve_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geonet/internal/core"
	"geonet/internal/geoserve"
)

// wireProbeSet derives the golden probe addresses from the pipeline:
// interface hits, generic prefix-level hosts, and a guaranteed miss —
// the same spread goldenTranscript uses for the JSON path.
func wireProbeSet(snap *geoserve.Snapshot, p *core.Pipeline) []uint32 {
	ips := publicIfaceIPs(p)
	probes := []uint32{ips[0], ips[1], ips[len(ips)/2], ips[len(ips)-1]}
	prefixes := snap.Prefixes()
	for _, base := range []uint32{prefixes[0], prefixes[len(prefixes)/2]} {
		for off := uint32(255); ; off-- {
			if _, taken := p.Internet.ByIP[base+off]; !taken {
				probes = append(probes, base+off)
				break
			}
			if off == 0 {
				break
			}
		}
	}
	return append(probes, 0xF0000001) // 240.0.0.1: class E never allocates
}

func postWire(tb testing.TB, h http.Handler, mapper uint16, ips []uint32) *httptest.ResponseRecorder {
	tb.Helper()
	req := geoserve.AppendWireBatchRequest(nil, mapper, ips)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/locate/bin", bytes.NewReader(req)))
	return w
}

// goldenWireTranscript hex-dumps every /v1/locate/bin response byte
// for the probe set under every mapper, so any drift in the wire
// format — header layout, record encoding, epoch tag derivation —
// fails the comparison.
func goldenWireTranscript(tb testing.TB, snap *geoserve.Snapshot, h http.Handler, probes []uint32) string {
	tb.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "digest %s\n", snap.Digest())
	for m := range snap.Mappers() {
		w := postWire(tb, h, uint16(m), probes)
		if w.Code != http.StatusOK {
			tb.Fatalf("bin mapper %d: status %d: %s", m, w.Code, w.Body.String())
		}
		fmt.Fprintf(&b, "POST /v1/locate/bin mapper=%d -> %d\n%x\n", m, w.Code, w.Body.Bytes())
	}
	return b.String()
}

// TestGoldenWire pins the binary wire protocol end to end:
//
//  1. the engine's /v1/locate/bin responses byte-for-byte (golden
//     file), including the epoch tag, which must equal the snapshot
//     digest's leading 16 hex digits;
//  2. decoded binary answers marshal to the exact bytes the JSON
//     GET /v1/locate path serves — binary and JSON are the same
//     answers on the wire;
//  3. a sharded cluster answers byte-identically to the engine at
//     several shard counts;
//  4. a hot-swap to an identical rebuild does not move a byte.
//
// Regenerate with
//
//	go test ./internal/geoserve -run TestGoldenWire -update
func TestGoldenWire(t *testing.T) {
	p, snap := fixture(t)
	probes := wireProbeSet(snap, p)
	e := geoserve.NewEngine(snap)
	h := geoserve.NewHandler(e)
	got := goldenWireTranscript(t, snap, h, probes)

	// Binary answers decode to the JSON path's exact bytes.
	for m, name := range snap.Mappers() {
		w := postWire(t, h, uint16(m), probes)
		mapper, tag, answers, err := geoserve.DecodeWireBatch(w.Body.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if int(mapper) != m {
			t.Fatalf("echoed mapper %d, want %d", mapper, m)
		}
		if want := snap.Digest()[:16]; fmt.Sprintf("%016x", tag) != want {
			t.Fatalf("epoch tag %016x is not the digest prefix %s", tag, want)
		}
		for i, ip := range probes {
			jw := httptest.NewRecorder()
			h.ServeHTTP(jw, httptest.NewRequest("GET",
				"/v1/locate?ip="+geoserve.FormatIPv4(ip)+"&mapper="+name, nil))
			if jw.Code != http.StatusOK {
				t.Fatalf("JSON lookup %s: status %d", geoserve.FormatIPv4(ip), jw.Code)
			}
			if bin := geoserve.MarshalAnswerJSON(answers[i], name); !bytes.Equal(bin, jw.Body.Bytes()) {
				t.Fatalf("mapper %s ip %s:\nbinary-decoded %s\nJSON endpoint  %s",
					name, geoserve.FormatIPv4(ip), bin, jw.Body.Bytes())
			}
		}
	}

	// Cluster byte-identity at several shard counts.
	for _, shards := range []int{2, 3, 5} {
		c, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if cg := goldenWireTranscript(t, snap, geoserve.NewClusterHandler(c), probes); cg != got {
			t.Fatalf("cluster(%d shards) wire transcript differs from engine's", shards)
		}
	}

	// Hot-swap to an identical rebuild: not a byte moves.
	p2, err := core.Run(core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := p2.Serve()
	if err != nil {
		t.Fatal(err)
	}
	e.Swap(snap2)
	if after := goldenWireTranscript(t, snap2, h, probes); after != got {
		t.Fatal("wire transcript changed across hot-swap to an identical rebuild")
	}

	path := filepath.Join("testdata", "golden_wire.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("wire transcript drifted from %s.\nIf intentional, regenerate with -update and review the diff.", path)
	}
}
