package geoserve

// Internal wire-protocol tests over synthetic snapshots: framing
// round-trips, typed decode errors, engine/cluster byte-identity of
// binary answers, the HTTP boundary of /v1/locate/bin, and the
// streaming path (full duplex, epoch tags across a mid-stream swap,
// in-band error frames). These reach the unexported encode/parse
// machinery directly, so they run in microseconds.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func wireProbeIPs(s *Snapshot) []uint32 {
	return probeAddrs(s)
}

func TestWireRequestRoundTrip(t *testing.T) {
	ips := []uint32{0, 1, 0x0A0B0C0D, 0xFFFFFFFF}
	req := AppendWireBatchRequest(nil, 3, ips)
	mapper, got, err := parseWireBatchRequest(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mapper != 3 {
		t.Fatalf("mapper %d, want 3", mapper)
	}
	if len(got) != len(ips) {
		t.Fatalf("%d addresses, want %d", len(got), len(ips))
	}
	for i := range ips {
		if got[i] != ips[i] {
			t.Fatalf("address %d: %d != %d", i, got[i], ips[i])
		}
	}
}

func TestWireParseTypedErrors(t *testing.T) {
	valid := AppendWireBatchRequest(nil, 0, []uint32{1, 2, 3})
	badMagic := bytes.Clone(valid)
	copy(badMagic, "nope")
	badVersion := bytes.Clone(valid)
	badVersion[4] = 99
	badKind := bytes.Clone(valid)
	badKind[5] = 77
	streamKind := bytes.Clone(valid)
	streamKind[5] = wireKindStreamReq
	short := valid[:len(valid)-2]
	empty := AppendWireBatchRequest(nil, 0, nil)
	huge := bytes.Clone(valid)
	huge[wireHeaderSize] = 0xFF
	huge[wireHeaderSize+1] = 0xFF
	huge[wireHeaderSize+2] = 0xFF

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty input", nil, ErrWireFormat},
		{"bad magic", badMagic, ErrWireMagic},
		{"bad version", badVersion, ErrWireVersion},
		{"unknown kind", badKind, ErrWireFormat},
		{"stream kind on batch parse", streamKind, ErrWireFormat},
		{"truncated addresses", short, ErrWireFormat},
		{"empty batch", empty, ErrWireFormat},
		{"oversized count", huge, ErrWireFormat},
	}
	for _, tc := range cases {
		if _, _, err := parseWireBatchRequest(tc.in, nil); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestWireDecodeTypedErrors(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 9, 2, 0)
	e := NewEngine(snap)
	resp := engineWireResponse(t, e, 1, []uint32{snap.prefixes[0] + 5})

	truncHeader := resp[:wireHeaderSize-1]
	truncFrame := resp[:wireHeaderSize+2]
	truncAnswers := resp[:len(resp)-7]
	trailing := append(bytes.Clone(resp), 0xAA)
	badFlags := bytes.Clone(resp)
	badFlags[wireHeaderSize+12+4+wireOffFlags] = 0xF0
	badMethod := bytes.Clone(resp)
	badMethod[wireHeaderSize+12+4+wireOffMethod] = 0xEE
	badReserved := bytes.Clone(resp)
	badReserved[wireHeaderSize+12+4+wireOffMethod+1] = 1
	reqNotResp := AppendWireBatchRequest(nil, 0, []uint32{1})

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"truncated header", truncHeader, ErrWireFormat},
		{"truncated frame prefix", truncFrame, ErrWireFormat},
		{"truncated answers", truncAnswers, ErrWireFormat},
		{"trailing bytes", trailing, ErrWireFormat},
		{"unknown flags", badFlags, ErrWireFormat},
		{"method code out of range", badMethod, ErrWireFormat},
		{"nonzero reserved bytes", badReserved, ErrWireFormat},
		{"request where response expected", reqNotResp, ErrWireFormat},
	}
	for _, tc := range cases {
		if _, _, _, err := DecodeWireBatch(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, _, _, err := DecodeWireBatch(resp); err != nil {
		t.Fatalf("pristine response failed to decode: %v", err)
	}
}

// engineWireResponse drives POST /v1/locate/bin through the full HTTP
// handler and returns the response body.
func engineWireResponse(t *testing.T, e *Engine, mapper uint16, ips []uint32) []byte {
	t.Helper()
	return handlerWireResponse(t, newHandler(e, nil), mapper, ips)
}

func handlerWireResponse(t *testing.T, h http.Handler, mapper uint16, ips []uint32) []byte {
	t.Helper()
	req := AppendWireBatchRequest(nil, mapper, ips)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/locate/bin", bytes.NewReader(req)))
	if w.Code != http.StatusOK {
		t.Fatalf("bin status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != WireContentType {
		t.Fatalf("bin Content-Type %q", ct)
	}
	return w.Body.Bytes()
}

// TestWireAnswersMatchLookup pins that a decoded wire answer equals
// the in-process Lookup answer for every probe, on every mapper.
func TestWireAnswersMatchLookup(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 23, 2, 0)
	e := NewEngine(snap)
	probes := wireProbeIPs(snap)
	for m := 0; m < len(snap.mappers); m++ {
		mapper, tag, answers, err := DecodeWireBatch(engineWireResponse(t, e, uint16(m), probes))
		if err != nil {
			t.Fatal(err)
		}
		if int(mapper) != m {
			t.Fatalf("echoed mapper %d, want %d", mapper, m)
		}
		if tag != snap.wireTag() {
			t.Fatalf("tag %016x, want %016x", tag, snap.wireTag())
		}
		if len(answers) != len(probes) {
			t.Fatalf("%d answers for %d probes", len(answers), len(probes))
		}
		for i, ip := range probes {
			if want := snap.Lookup(m, ip); answers[i] != want {
				t.Fatalf("mapper %d ip %s: wire %+v != lookup %+v", m, FormatIPv4(ip), answers[i], want)
			}
		}
	}
}

// TestWireDefaultMapper pins WireMapperDefault resolving to mapper 0
// and the response echoing the resolved index.
func TestWireDefaultMapper(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 9, 2, 0)
	e := NewEngine(snap)
	probes := []uint32{snap.prefixes[0] + 7}
	def := engineWireResponse(t, e, WireMapperDefault, probes)
	zero := engineWireResponse(t, e, 0, probes)
	if !bytes.Equal(def, zero) {
		t.Fatal("WireMapperDefault response differs from mapper 0's")
	}
	mapper, _, _, err := DecodeWireBatch(def)
	if err != nil || mapper != 0 {
		t.Fatalf("mapper %d err %v, want 0 <nil>", mapper, err)
	}
}

// TestWireEngineClusterByteIdentity pins the acceptance property at
// the core: the /v1/locate/bin response over a cluster is byte-
// identical to the unsharded engine's at several shard counts, and
// across a hot-swap to an identical rebuild.
func TestWireEngineClusterByteIdentity(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 23, 2, 0)
	e := NewEngine(snap)
	probes := wireProbeIPs(snap)
	want := engineWireResponse(t, e, 0, probes)

	for _, shards := range []int{1, 2, 3, 8} {
		c, err := NewCluster(syntheticSnapshot(10<<24, 23, 2, 0), ClusterConfig{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		got := handlerWireResponse(t, newHandler(c, nil), 0, probes)
		if !bytes.Equal(got, want) {
			t.Fatalf("cluster(%d shards) wire response differs from engine's", shards)
		}
		// Hot-swap to an identical rebuild: bytes must not move.
		if _, err := c.Swap(syntheticSnapshot(10<<24, 23, 2, 0)); err != nil {
			t.Fatal(err)
		}
		after := handlerWireResponse(t, newHandler(c, nil), 0, probes)
		if !bytes.Equal(after, want) {
			t.Fatalf("cluster(%d shards) wire response drifted across hot-swap", shards)
		}
	}
}

func TestWireBinHTTPErrors(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 9, 2, 0)
	h := newHandler(NewEngine(snap), nil)
	post := func(body []byte) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/locate/bin", bytes.NewReader(body)))
		return w
	}

	if w := post([]byte("garbage")); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: %d, want 400", w.Code)
	}
	if w := post(AppendWireBatchRequest(nil, 9, []uint32{1})); w.Code != http.StatusBadRequest {
		t.Fatalf("unresolvable mapper id: %d, want 400", w.Code)
	}
	big := AppendWireBatchRequest(nil, 0, make([]uint32, MaxBatch))
	big = append(big, make([]byte, 64)...) // push past the exact maximal size
	if w := post(big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", w.Code)
	}
}

// TestWireBinOverloaded pins the 429 mapping: a cluster whose shards
// are pinned at budget sheds the binary batch whole.
func TestWireBinOverloaded(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 9, 1, 0)
	c, err := NewCluster(snap, ClusterConfig{Shards: 2, QueueBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range c.shards {
		if !sh.tryAcquire() {
			t.Fatal("failed to pin shard at budget")
		}
	}
	req := AppendWireBatchRequest(nil, 0, wireProbeIPs(snap))
	w := httptest.NewRecorder()
	newHandler(c, nil).ServeHTTP(w, httptest.NewRequest("POST", "/v1/locate/bin", bytes.NewReader(req)))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
}

// streamClient is a ping-pong client over a real connection: write one
// chunk, read one frame.
type streamClient struct {
	w    io.WriteCloser
	rd   *WireReader
	resp *http.Response
}

func dialStream(t *testing.T, url string, mapper uint16) *streamClient {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", url+"/v1/locate/stream",
		io.MultiReader(bytes.NewReader(AppendWireStreamHeader(nil, mapper)), pr))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", WireContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	rd, err := NewWireReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return &streamClient{w: pw, rd: rd, resp: resp}
}

func (sc *streamClient) roundTrip(t *testing.T, ips []uint32) ([]Answer, uint64) {
	t.Helper()
	if _, err := sc.w.Write(AppendWireChunk(nil, ips)); err != nil {
		t.Fatal(err)
	}
	answers, tag, err := sc.rd.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	return answers, tag
}

func (sc *streamClient) close(t *testing.T) {
	t.Helper()
	if _, err := sc.w.Write(AppendWireStreamEnd(nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.rd.Next(nil); err != io.EOF {
		t.Fatalf("after terminator: %v, want io.EOF", err)
	}
	sc.w.Close()
	sc.resp.Body.Close()
}

// TestWireStream drives the streaming path over a real HTTP server:
// ping-pong chunks, answers matching Lookup, the epoch tag flipping
// when the engine hot-swaps mid-stream (and never inside a frame), and
// a clean terminator echo.
func TestWireStream(t *testing.T) {
	snap1 := syntheticSnapshot(10<<24, 23, 2, 0)
	snap2 := syntheticSnapshot(10<<24, 23, 2, 1.5) // different content
	e := NewEngine(snap1)
	srv := httptest.NewServer(newHandler(e, nil))
	defer srv.Close()

	sc := dialStream(t, srv.URL, 1)
	probes := wireProbeIPs(snap1)

	answers, tag := sc.roundTrip(t, probes)
	if tag != snap1.wireTag() {
		t.Fatalf("tag %016x, want %016x", tag, snap1.wireTag())
	}
	for i, ip := range probes {
		if want := snap1.Lookup(1, ip); answers[i] != want {
			t.Fatalf("ip %s: stream %+v != lookup %+v", FormatIPv4(ip), answers[i], want)
		}
	}

	// Hot-swap between chunks: the next frame is wholly the new epoch.
	e.Swap(snap2)
	answers, tag = sc.roundTrip(t, probes)
	if tag != snap2.wireTag() {
		t.Fatalf("post-swap tag %016x, want %016x", tag, snap2.wireTag())
	}
	for i, ip := range probes {
		if want := snap2.Lookup(1, ip); answers[i] != want {
			t.Fatalf("post-swap ip %s: stream %+v != lookup %+v", FormatIPv4(ip), answers[i], want)
		}
	}
	sc.close(t)
}

// TestWireStreamOverloaded pins the in-band error frame: a chunk shed
// at shard budget ends the stream with ErrWireOverloaded.
func TestWireStreamOverloaded(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 9, 1, 0)
	c, err := NewCluster(snap, ClusterConfig{Shards: 2, QueueBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(c, nil))
	defer srv.Close()

	sc := dialStream(t, srv.URL, 0)
	probes := wireProbeIPs(snap)
	if _, tag := sc.roundTrip(t, probes); tag != snap.wireTag() {
		t.Fatalf("healthy chunk got tag %016x", tag)
	}
	for _, sh := range c.shards {
		sh.tryAcquire()
	}
	if _, err := sc.w.Write(AppendWireChunk(nil, probes)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.rd.Next(nil); !errors.Is(err, ErrWireOverloaded) {
		t.Fatalf("err %v, want ErrWireOverloaded", err)
	}
	sc.w.Close()
	sc.resp.Body.Close()
}

// TestWireStreamSwapRace races concurrent streams against engine
// hot-swaps; under -race this proves the streaming path shares no
// mutable state across goroutines. Every frame must carry one of the
// two live epochs' tags.
func TestWireStreamSwapRace(t *testing.T) {
	snapA := syntheticSnapshot(10<<24, 23, 2, 0)
	snapB := syntheticSnapshot(10<<24, 23, 2, 2.5)
	e := NewEngine(snapA)
	srv := httptest.NewServer(newHandler(e, nil))
	defer srv.Close()

	tagA, tagB := snapA.wireTag(), snapB.wireTag()
	probes := wireProbeIPs(snapA)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			if flip {
				e.Swap(snapA)
			} else {
				e.Swap(snapB)
			}
			flip = !flip
		}
	}()

	var clients sync.WaitGroup
	errc := make(chan error, 4)
	for k := 0; k < 4; k++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			sc := dialStream(t, srv.URL, 0)
			for round := 0; round < 30; round++ {
				if _, err := sc.w.Write(AppendWireChunk(nil, probes)); err != nil {
					errc <- err
					return
				}
				_, tag, err := sc.rd.Next(nil)
				if err != nil {
					errc <- err
					return
				}
				if tag != tagA && tag != tagB {
					errc <- fmt.Errorf("frame tagged %016x, want %016x or %016x", tag, tagA, tagB)
					return
				}
			}
			sc.w.Write(AppendWireStreamEnd(nil))
			sc.w.Close()
			sc.resp.Body.Close()
		}()
	}
	clients.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
