package geoserve_test

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geonet/internal/core"
	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

// wireEpochTag reproduces the wire protocol's epoch tag for a
// snapshot: the first 8 bytes of its content digest, big-endian.
func wireEpochTag(tb testing.TB, snap *geoserve.Snapshot) uint64 {
	tb.Helper()
	raw, err := hex.DecodeString(snap.Digest()[:16])
	if err != nil {
		tb.Fatalf("digest %q: %v", snap.Digest(), err)
	}
	return binary.BigEndian.Uint64(raw)
}

// TestChurnWireChaos races sustained binary-wire batches against a
// continuous churn stream: while worker goroutines hammer a sharded
// cluster's POST /v1/locate/bin, the main goroutine delta-swaps the
// cluster through a 10-step churn chain. Three invariants under the
// race, with -race watching the implementation:
//
//  1. every response frame's epoch tag is one of the chain's published
//     epochs — never a tag the cluster was never asked to serve;
//  2. every answer in a frame equals the tagged snapshot's own row for
//     that address — one batch, one epoch, zero blended frames;
//  3. the workers actually observed the world moving (more than one
//     distinct tag), so the race is real, not a fixture accident.
func TestChurnWireChaos(t *testing.T) {
	const (
		chaosSteps   = 10
		chaosEvents  = 8
		chaosSeed    = 13
		chaosWorkers = 4
		batchSize    = 64
	)
	p, base := fixture(t)

	// Precompute the churn chain so the serving race below applies
	// steps back-to-back instead of paying a compile per swap.
	type epoch struct {
		snap    *geoserve.Snapshot
		touched []uint32
	}
	ch, err := p.Churner(core.ServeOptions{}, chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	chain := make([]epoch, 0, chaosSteps)
	byTag := map[uint64]*geoserve.Snapshot{wireEpochTag(t, base): base}
	prev := base
	for i := 0; i < chaosSteps; i++ {
		step, err := ch.Next(chaosEvents)
		if err != nil {
			t.Fatal(err)
		}
		next, stats, err := p.ServeDelta(prev, step)
		if err != nil {
			t.Fatalf("step %d: %v", step.N, err)
		}
		chain = append(chain, epoch{snap: next, touched: stats.Touched})
		byTag[wireEpochTag(t, next)] = next
		prev = next
	}

	cluster, err := geoserve.NewCluster(base, geoserve.ClusterConfig{Shards: 4, QueueBudget: 256})
	if err != nil {
		t.Fatal(err)
	}
	handler := geoserve.NewClusterHandler(cluster)

	// Addresses are drawn from the final snapshot's /24 index — a
	// superset of every earlier epoch's — plus its exact rows, so
	// batches cross both churned and untouched intervals; in an epoch
	// where an address does not exist yet, the tagged snapshot's own
	// miss row is the required answer.
	prefixes, exact := prev.Prefixes(), prev.ExactIPs()
	mappers := len(base.Mappers())

	var (
		stop    atomic.Bool
		batches atomic.Uint64
		shed    atomic.Uint64
		tagsMu  sync.Mutex
		tags    = map[uint64]struct{}{}
		wg      sync.WaitGroup
	)
	for w := 0; w < chaosWorkers; w++ {
		r := rng.New(chaosSeed).SplitN("chaos-worker", w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ips := make([]uint32, batchSize)
			seen := map[uint64]struct{}{}
			for n := 0; !stop.Load(); n++ {
				for i := range ips {
					if i%4 == 0 && len(exact) > 0 {
						ips[i] = exact[r.Intn(len(exact))]
					} else {
						ips[i] = prefixes[r.Intn(len(prefixes))] + uint32(r.Intn(256))
					}
				}
				mapper := uint16(n % mappers)
				req := geoserve.AppendWireBatchRequest(nil, mapper, ips)
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/locate/bin", bytes.NewReader(req)))
				if rec.Code == http.StatusTooManyRequests {
					shed.Add(1)
					continue
				}
				if rec.Code != http.StatusOK {
					t.Errorf("batch status %d: %s", rec.Code, rec.Body.String())
					return
				}
				gotMapper, tag, answers, err := geoserve.DecodeWireBatch(rec.Body.Bytes())
				if err != nil {
					t.Errorf("decode batch: %v", err)
					return
				}
				if int(gotMapper) != int(mapper) {
					t.Errorf("mapper echo %d, want %d", gotMapper, mapper)
					return
				}
				snap, ok := byTag[tag]
				if !ok {
					t.Errorf("frame tagged %016x: not a published epoch", tag)
					return
				}
				if len(answers) != len(ips) {
					t.Errorf("%d answers for %d addresses", len(answers), len(ips))
					return
				}
				for i, a := range answers {
					if want := snap.Lookup(int(mapper), ips[i]); a != want {
						t.Errorf("blended batch: answer %d under epoch %016x is %+v, tagged snapshot says %+v",
							i, tag, a, want)
						return
					}
				}
				seen[tag] = struct{}{}
				batches.Add(1)
			}
			tagsMu.Lock()
			for tag := range seen {
				tags[tag] = struct{}{}
			}
			tagsMu.Unlock()
		}()
	}

	// The churn stream: delta-swap through every epoch while the
	// workers run. Swaps are paced on batch progress, not wall-clock
	// sleeps: each epoch stays serving until a few more batches have
	// landed, so every epoch is actually observed under fire and the
	// test never races its own warm-up.
	waitBatches := func(target uint64) {
		deadline := time.Now().Add(10 * time.Second)
		for batches.Load() < target && !t.Failed() {
			if time.Now().After(deadline) {
				t.Errorf("stalled at %d batches waiting for %d (%d shed)", batches.Load(), target, shed.Load())
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for i, e := range chain {
		waitBatches(batches.Load() + 2)
		if t.Failed() {
			break
		}
		if _, _, err := cluster.SwapDelta(e.snap, e.touched); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("step %d: SwapDelta: %v", i+1, err)
		}
	}
	waitBatches(batches.Load() + 2)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if n := batches.Load(); n < chaosWorkers {
		t.Fatalf("only %d successful batches landed (%d shed); the race never ran", n, shed.Load())
	}
	if len(tags) < 2 {
		t.Fatalf("workers saw %d distinct epoch tags across %d batches; want the swap visible under load",
			len(tags), batches.Load())
	}
	if got := cluster.Snapshot().Digest(); got != prev.Digest() {
		t.Fatalf("cluster finished on %s, want final chain epoch %s", got, prev.Digest())
	}
	t.Logf("chaos: %d batches (%d shed) across %d distinct epochs", batches.Load(), shed.Load(), len(tags))
}
