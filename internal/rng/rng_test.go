package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(42)
	b := New(42)
	// Consume some of b before splitting.
	for i := 0; i < 57; i++ {
		b.Float64()
	}
	ca := a.Split("child")
	cb := b.Split("child")
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatal("split streams must not depend on parent consumption")
		}
	}
}

func TestSplitDistinctNames(t *testing.T) {
	s := New(1)
	a := s.Split("alpha")
	b := s.Split("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 20 {
		t.Errorf("streams with distinct names look correlated: %d/64 equal draws", same)
	}
}

func TestSplitN(t *testing.T) {
	s := New(9)
	a := s.SplitN("router", 3)
	b := s.SplitN("router", 3)
	c := s.SplitN("router", 4)
	if a.Float64() != b.Float64() {
		t.Error("SplitN with same index must match")
	}
	if a.Seed() == c.Seed() {
		t.Error("SplitN with different index must differ")
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(2)
	for i := 0; i < 20; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) must be false")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) must be true")
		}
	}
	hits := 0
	n := 20000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if p < 0.27 || p > 0.33 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestExpMean(t *testing.T) {
	s := New(3)
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		sum += s.Exp(140)
	}
	mean := sum / float64(n)
	if mean < 135 || mean > 145 {
		t.Errorf("Exp(140) sample mean = %v", mean)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(4)
	n := 100000
	over10 := 0
	under1 := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 1.2)
		if v < 1 {
			under1++
		}
		if v > 10 {
			over10++
		}
	}
	if under1 > 0 {
		t.Errorf("%d Pareto samples below scale", under1)
	}
	// P[X > 10] = 10^-1.2 ~= 0.063.
	p := float64(over10) / float64(n)
	if p < 0.055 || p > 0.072 {
		t.Errorf("Pareto tail mass = %v, want ~0.063", p)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 20000; i++ {
		v := s.BoundedPareto(2, 500, 1.1)
		if v < 2 || v > 500 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
	// Degenerate bound.
	if v := s.BoundedPareto(5, 5, 1.1); v != 5 {
		t.Errorf("degenerate BoundedPareto = %v, want 5", v)
	}
}

func TestZipfRankOne(t *testing.T) {
	s := New(6)
	draw := s.Zipf(1.2, 1000)
	counts := map[int]int{}
	for i := 0; i < 50000; i++ {
		k := draw()
		if k < 1 || k > 1000 {
			t.Fatalf("Zipf rank out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Errorf("Zipf counts not decreasing: r1=%d r2=%d r10=%d", counts[1], counts[2], counts[10])
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(7)
	w := []float64{0, 1, 3, 0}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.WeightedIndex(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight indices sampled: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.8 || ratio > 3.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestCumulativeMatchesWeightedIndex(t *testing.T) {
	w := []float64{2, 0, 5, 1, 0, 7}
	c := NewCumulative(w)
	s := New(8)
	counts := make([]int, len(w))
	n := 90000
	for i := 0; i < n; i++ {
		counts[c.Sample(s)]++
	}
	if counts[1] != 0 || counts[4] != 0 {
		t.Errorf("zero-weight indices sampled: %v", counts)
	}
	for i, want := range []float64{2.0 / 15, 0, 5.0 / 15, 1.0 / 15, 0, 7.0 / 15} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency = %v, want %v", i, got, want)
		}
	}
	if c.Total() != 15 {
		t.Errorf("Total = %v, want 15", c.Total())
	}
}

func TestCumulativeZeroTotalUniform(t *testing.T) {
	c := NewCumulative([]float64{0, 0, 0})
	s := New(10)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[c.Sample(s)] = true
	}
	if len(seen) != 3 {
		t.Errorf("zero-total sampler should fall back to uniform; saw %v", seen)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 2); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}
