package rng

import "math/rand"

// source is a bit-exact replica of math/rand's additive lagged-Fibonacci
// generator with a fast seeding path. Seeding dominates stream creation
// cost: the pipeline derives a short-lived child stream per probe, and
// math/rand's Seed runs 1841 steps of a Lehmer LCG using Schrage
// division. This replica computes the identical recurrence
//
//	x' = 48271·x mod 2³¹−1
//
// with a widening multiply and a Mersenne fold (2³¹ ≡ 1 mod 2³¹−1), no
// division at all, making re-seeding several times cheaper. Because the
// state transition and output function are the stdlib's own, every
// stream — and therefore every generated world and report — is
// bit-identical to one built on rand.NewSource. TestSourceMatchesStdlib
// pins that equivalence.
//
// Unlike rand.NewSource, a source can also be re-seeded in place
// (SplitNInto), so per-probe streams reuse one ~5KB state array instead
// of allocating a fresh one per trace.
type source struct {
	vec       [rngLen]int64
	tap, feed int32
}

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1

	lehmerA = 48271
	// seedZero is what math/rand substitutes for an effective seed of 0
	// (a Lehmer LCG fixes the point 0).
	seedZero = 89482311
)

// cooked is math/rand's rngCooked additive-generator priming table. The
// stdlib does not export it, so init recovers it from an actual
// rand.NewSource: the first rngLen outputs of a freshly seeded source
// determine its initial state by back-substitution (each output is the
// sum of two state words, and every written word is itself an observed
// output), and the initial state is the seed-derived XOR stream XORed
// with the cooked table.
var cooked [rngLen]uint64

func init() {
	const seed = 1
	src := rand.NewSource(seed).(rand.Source64)
	var out [rngLen]uint64
	for i := range out {
		out[i] = src.Uint64()
	}
	// Step s (1-based) reads vec[feed]+vec[tap] and stores the sum at
	// feed, with feed starting at rngLen-rngTap-1 = 333 and tap at 606,
	// both decrementing mod 607. Writes always store observed outputs,
	// so any equation whose tap operand was previously written yields
	// the original feed word directly:
	//   s in 274..607: vec0[feed_s] = out_s − out_{s−273}
	// which covers feed indices 60..0 and 606..334; the remaining
	// 333..61 follow from the first-phase equations
	//   s in 1..273:   vec0[feed_s] = out_s − vec0[tap_s]
	// whose tap words 606..334 are recovered by then. Addition wraps
	// mod 2⁶⁴, so uint64 subtraction inverts it exactly.
	var vec0 [rngLen]uint64
	for s := 274; s <= 334; s++ {
		vec0[334-s] = out[s-1] - out[s-274]
	}
	for s := 335; s <= rngLen; s++ {
		vec0[941-s] = out[s-1] - out[s-274]
	}
	for s := 1; s <= 273; s++ {
		vec0[334-s] = out[s-1] - vec0[rngLen-s]
	}
	// vec0[i] = seedXOR_i ^ cooked[i]; replay the seed's Lehmer chain
	// to strip the XOR stream.
	x := uint64(seed)
	for i := 0; i < 20; i++ {
		x = lehmerStep(x)
	}
	for i := 0; i < rngLen; i++ {
		x = lehmerStep(x)
		u := x << 40
		x = lehmerStep(x)
		u ^= x << 20
		x = lehmerStep(x)
		u ^= x
		cooked[i] = vec0[i] ^ u
	}
}

// lehmerStep advances x = 48271·x mod 2³¹−1 for x in [0, 2³¹−1) using a
// Mersenne fold instead of division: p = q·2³¹ + r ≡ q + r (mod 2³¹−1).
func lehmerStep(x uint64) uint64 {
	p := lehmerA * x // < 2⁴⁷
	x = (p >> 31) + (p & int32max)
	if x >= int32max {
		x -= int32max
	}
	return x
}

// Seed resets the generator to the exact state rand.NewSource(seed)
// would have. It reuses the receiver's state array, allocating nothing.
func (s *source) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap
	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = seedZero
	}
	x := uint64(seed)
	for i := 0; i < 20; i++ {
		x = lehmerStep(x)
	}
	for i := 0; i < rngLen; i++ {
		x = lehmerStep(x)
		u := x << 40
		x = lehmerStep(x)
		u ^= x << 20
		x = lehmerStep(x)
		u ^= x
		s.vec[i] = int64(u ^ cooked[i])
	}
}

// Uint64 mirrors math/rand's rngSource.Uint64.
func (s *source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 mirrors math/rand's rngSource.Int63.
func (s *source) Int63() int64 { return int64(s.Uint64() & rngMask) }
