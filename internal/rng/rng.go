// Package rng provides deterministic, splittable random streams and the
// heavy-tailed samplers the synthetic-Internet generator needs.
//
// Every stochastic component of the reproduction takes an explicit
// *rng.Stream so a (seed, scale) pair regenerates the same world
// bit-for-bit. Streams are split by name: a child stream's seed is a
// hash of the parent seed and the child name, so adding a new consumer
// never perturbs existing ones — the property that makes ablation
// experiments comparable across runs.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Stream is a deterministic random stream. It embeds *rand.Rand, so all
// the standard methods (Intn, Float64, Perm, Shuffle, NormFloat64, ...)
// are available directly. The underlying generator is a bit-exact
// replica of math/rand's (see source.go), so it can be re-seeded in
// place without allocating.
type Stream struct {
	*rand.Rand
	src  *source
	seed int64
}

// New creates a stream from a seed.
func New(seed int64) *Stream {
	src := &source{}
	src.Seed(seed)
	return &Stream{Rand: rand.New(src), src: src, seed: seed}
}

// Seed returns the seed the stream was created with.
func (s *Stream) Seed() int64 { return s.seed }

// splitSeed hashes a parent seed and a child name into the child's
// seed; splitSeedN additionally mixes in an index.
func splitSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(seed)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	return int64(h.Sum64())
}

func splitSeedN(seed int64, name string, n int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(seed)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	buf2 := [8]byte{}
	un := uint64(n)
	for i := 0; i < 8; i++ {
		buf2[i] = byte(un >> (8 * i))
	}
	h.Write(buf2[:])
	return int64(h.Sum64())
}

// Split derives an independent child stream. The child's sequence
// depends only on the parent seed and the name, not on how much of the
// parent stream has been consumed.
func (s *Stream) Split(name string) *Stream {
	return New(splitSeed(s.seed, name))
}

// SplitN derives a numbered child stream, convenient for per-item
// streams in loops.
func (s *Stream) SplitN(name string, n int) *Stream {
	return New(splitSeedN(s.seed, name, n))
}

// SplitNInto is SplitN with state reuse: when dst is non-nil its
// generator is re-seeded in place — no allocation — and dst is
// returned; when dst is nil a fresh stream is created. Either way the
// resulting stream's draw sequence is identical to SplitN(name, n)'s,
// so tight loops (one child stream per probe) can recycle a single
// Stream without perturbing results.
func (s *Stream) SplitNInto(dst *Stream, name string, n int) *Stream {
	seed := splitSeedN(s.seed, name, n)
	if dst == nil {
		return New(seed)
	}
	dst.seed = seed
	dst.src.Seed(seed)
	return dst
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp samples an exponential distribution with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	return s.ExpFloat64() * mean
}

// Pareto samples a Pareto distribution with scale xm (minimum value)
// and shape alpha. Small alpha (~1) gives the long tails the paper
// observes in AS size distributions (Figure 7).
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto samples a Pareto(xm, alpha) truncated to [xm, max] by
// inversion, so the tail mass is redistributed rather than clipped
// (clipping would create an atom at max).
func (s *Stream) BoundedPareto(xm, max, alpha float64) float64 {
	if max <= xm {
		return xm
	}
	u := s.Float64()
	ha := math.Pow(max, alpha)
	la := math.Pow(xm, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < xm {
		x = xm
	}
	if x > max {
		x = max
	}
	return x
}

// LogNormal samples exp(N(mu, sigma)).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.NormFloat64()*sigma + mu)
}

// Zipf returns a sampler over ranks {1..n} with exponent theta >= 1
// (probability of rank k proportional to 1/k^theta), built on
// math/rand's rejection-inversion Zipf.
func (s *Stream) Zipf(theta float64, n int) func() int {
	if theta < 1.001 {
		theta = 1.001
	}
	z := rand.NewZipf(s.Rand, theta, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) + 1 }
}

// WeightedIndex samples an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero total weight yields a uniform draw.
func (s *Stream) WeightedIndex(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	r := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Cumulative is a prebuilt alias table-free cumulative-weight sampler
// for repeated draws over the same weights (O(log n) per draw).
type Cumulative struct {
	cum []float64
}

// NewCumulative builds a sampler from non-negative weights.
func NewCumulative(weights []float64) *Cumulative {
	cum := make([]float64, len(weights))
	run := 0.0
	for i, w := range weights {
		if w > 0 {
			run += w
		}
		cum[i] = run
	}
	return &Cumulative{cum: cum}
}

// Sample draws an index with probability proportional to its weight.
func (c *Cumulative) Sample(s *Stream) int {
	n := len(c.cum)
	if n == 0 {
		panic("rng: sampling from empty Cumulative")
	}
	total := c.cum[n-1]
	if total <= 0 {
		return s.Intn(n)
	}
	r := s.Float64() * total
	// Binary search for the first cum value exceeding r.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] > r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Total returns the total weight.
func (c *Cumulative) Total() float64 {
	if len(c.cum) == 0 {
		return 0
	}
	return c.cum[len(c.cum)-1]
}
