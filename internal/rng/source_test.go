package rng

import (
	"math"
	"math/rand"
	"testing"
)

// TestSourceMatchesStdlib pins the bit-exact equivalence between the
// replica source and math/rand: same Uint64/Int63 sequences for a
// spread of seeds, including the 0 and negative special cases, and
// after in-place re-seeding.
func TestSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, 2, -1, -12345, 89482311, 1 << 31, math.MaxInt64, math.MinInt64, 4242424242}
	for i := int64(0); i < 200; i++ {
		seeds = append(seeds, i*2654435761)
	}
	replica := &source{}
	for _, seed := range seeds {
		want := rand.NewSource(seed).(rand.Source64)
		replica.Seed(seed)          // reuse across seeds exercises in-place re-seeding
		for j := 0; j < 1300; j++ { // > 2 full passes over the 607-word state
			if g, w := replica.Uint64(), want.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: Uint64 = %d, stdlib %d", seed, j, g, w)
			}
		}
		if g, w := replica.Int63(), want.Int63(); g != w {
			t.Fatalf("seed %d: Int63 = %d, stdlib %d", seed, g, w)
		}
	}
}

// TestStreamMatchesStdlibRand pins the full Stream stack (replica
// source under *rand.Rand) against a rand.Rand on the stdlib source.
func TestStreamMatchesStdlibRand(t *testing.T) {
	s := New(7)
	w := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if g, want := s.Float64(), w.Float64(); g != want {
			t.Fatalf("draw %d: Float64 = %v, stdlib %v", i, g, want)
		}
	}
	for i := 0; i < 500; i++ {
		if g, want := s.NormFloat64(), w.NormFloat64(); g != want {
			t.Fatalf("draw %d: NormFloat64 = %v, stdlib %v", i, g, want)
		}
		if g, want := s.Intn(1000), w.Intn(1000); g != want {
			t.Fatalf("draw %d: Intn = %v, stdlib %v", i, g, want)
		}
	}
}

// TestSplitNInto proves the reuse path draws the same sequence as a
// freshly created SplitN child.
func TestSplitNInto(t *testing.T) {
	parent := New(99)
	scratch := New(0) // arbitrary initial state; re-seeded below
	for n := 0; n < 50; n++ {
		fresh := parent.SplitN("probe", n)
		reused := parent.SplitNInto(scratch, "probe", n)
		if reused != scratch {
			t.Fatal("SplitNInto did not return the reused stream")
		}
		if fresh.Seed() != reused.Seed() {
			t.Fatalf("n=%d: seeds differ: %d vs %d", n, fresh.Seed(), reused.Seed())
		}
		for j := 0; j < 100; j++ {
			if g, w := reused.Float64(), fresh.Float64(); g != w {
				t.Fatalf("n=%d draw %d: %v vs %v", n, j, g, w)
			}
		}
	}
	if got := parent.SplitNInto(nil, "probe", 3); got == nil {
		t.Fatal("SplitNInto(nil, ...) returned nil")
	}
}
