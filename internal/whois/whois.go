// Package whois is the reproduction's registry substrate (the ARIN /
// RIPE / APNIC stand-in). Every AS registers one organisation record
// whose postal address is its headquarters city. This bakes in the
// failure mode the paper calls out for whois-based geolocation: "the
// whois lookup method is generally accurate for small organizations but
// may fail in cases where geographically dispersed hosts are mapped to
// an organization's registered headquarters" (Section III-B).
package whois

import (
	"fmt"
	"sort"
	"strings"

	"geonet/internal/geo"
	"geonet/internal/netgen"
)

// Record is one registry object: an organisation with its registered
// address ranges and headquarters location.
type Record struct {
	OrgID    string
	OrgName  string
	ASNumber int
	// City and Loc describe the registered headquarters.
	City string
	Loc  geo.Point
	// Ranges are the organisation's registered address blocks.
	Ranges []netgen.Prefix
}

// Registry answers whois queries by IP address.
type Registry struct {
	records []Record
	// index maps sorted range starts to record indices for lookup.
	starts []uint32
	ends   []uint32
	recIdx []int
}

// FromInternet builds the registry from ground truth.
func FromInternet(in *netgen.Internet) *Registry {
	reg := &Registry{}
	for _, as := range in.ASes {
		hq := in.World.Places[as.HomePlace]
		reg.records = append(reg.records, Record{
			OrgID:    fmt.Sprintf("ORG-%d", as.Number),
			OrgName:  strings.ToUpper(as.OrgName),
			ASNumber: as.Number,
			City:     hq.Name,
			Loc:      hq.Loc,
			Ranges:   as.Prefixes,
		})
	}
	reg.buildIndex()
	return reg
}

func (r *Registry) buildIndex() {
	type span struct {
		start, end uint32
		idx        int
	}
	var spans []span
	for i, rec := range r.records {
		for _, p := range rec.Ranges {
			size := uint32(1)
			if p.Len < 32 {
				size = uint32(1) << (32 - uint(p.Len))
			}
			spans = append(spans, span{p.Addr, p.Addr + size - 1, i})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	for _, s := range spans {
		r.starts = append(r.starts, s.start)
		r.ends = append(r.ends, s.end)
		r.recIdx = append(r.recIdx, s.idx)
	}
}

// Lookup finds the record whose registered range covers the address.
func (r *Registry) Lookup(ip uint32) (Record, bool) {
	// Binary search for the last range starting at or before ip.
	lo, hi := 0, len(r.starts)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.starts[mid] <= ip {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Record{}, false
	}
	i := lo - 1
	if ip > r.ends[i] {
		return Record{}, false
	}
	return r.records[r.recIdx[i]], true
}

// NumRecords reports the registry size.
func (r *Registry) NumRecords() int { return len(r.records) }

// Format renders a record in classic whois text output.
func (rec Record) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OrgId:      %s\n", rec.OrgID)
	fmt.Fprintf(&b, "OrgName:    %s\n", rec.OrgName)
	fmt.Fprintf(&b, "City:       %s\n", rec.City)
	fmt.Fprintf(&b, "OriginAS:   AS%d\n", rec.ASNumber)
	for _, p := range rec.Ranges {
		fmt.Fprintf(&b, "CIDR:       %d.%d.%d.%d/%d\n",
			p.Addr>>24, (p.Addr>>16)&0xff, (p.Addr>>8)&0xff, p.Addr&0xff, p.Len)
	}
	return b.String()
}
