package whois

import (
	"strings"
	"testing"

	"geonet/internal/geo"
	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
)

func buildRegistry(t *testing.T) (*netgen.Internet, *Registry) {
	t.Helper()
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := netgen.DefaultConfig()
	cfg.Scale = 0.01
	in := netgen.Build(cfg, world)
	return in, FromInternet(in)
}

func TestLookupEveryInterface(t *testing.T) {
	in, reg := buildRegistry(t)
	if reg.NumRecords() != len(in.ASes) {
		t.Fatalf("records = %d, want %d", reg.NumRecords(), len(in.ASes))
	}
	for _, ifc := range in.Ifaces {
		if ifc.Private || ifc.IP == 0 {
			continue
		}
		rec, ok := reg.Lookup(ifc.IP)
		if !ok {
			t.Fatalf("no whois record for iface %d", ifc.ID)
		}
		truth := in.ASes[in.Routers[ifc.Router].AS]
		if rec.ASNumber != truth.Number {
			t.Fatalf("whois AS = %d, truth %d", rec.ASNumber, truth.Number)
		}
	}
}

func TestLookupReturnsHeadquarters(t *testing.T) {
	in, reg := buildRegistry(t)
	// Find a widely dispersed AS; a whois lookup for any of its
	// addresses must return the HQ city — the paper's documented
	// failure mode for dispersed organisations.
	for _, as := range in.ASes {
		if len(as.Places) < 5 {
			continue
		}
		hq := in.World.Places[as.HomePlace]
		var remoteIface *netgen.Iface
		for _, rid := range as.Routers {
			r := in.Routers[rid]
			if r.Place != as.HomePlace && geo.DistanceMiles(r.Loc, hq.Loc) > 500 {
				for _, ifid := range r.Ifaces {
					if !in.Ifaces[ifid].Private && in.Ifaces[ifid].IP != 0 {
						remoteIface = &in.Ifaces[ifid]
						break
					}
				}
			}
			if remoteIface != nil {
				break
			}
		}
		if remoteIface == nil {
			continue
		}
		rec, ok := reg.Lookup(remoteIface.IP)
		if !ok {
			t.Fatal("lookup failed")
		}
		if rec.City != hq.Name {
			t.Errorf("whois city = %q, want HQ %q", rec.City, hq.Name)
		}
		if geo.DistanceMiles(rec.Loc, hq.Loc) > 1 {
			t.Errorf("whois loc = %v, want HQ %v", rec.Loc, hq.Loc)
		}
		return
	}
	t.Skip("no suitable dispersed AS found")
}

func TestLookupMisses(t *testing.T) {
	_, reg := buildRegistry(t)
	if _, ok := reg.Lookup(0x01000001); ok {
		t.Error("address below all allocations resolved")
	}
	if _, ok := reg.Lookup(0xFF000001); ok {
		t.Error("address above all allocations resolved")
	}
}

func TestFormat(t *testing.T) {
	rec := Record{
		OrgID: "ORG-77", OrgName: "EXAMPLENET", ASNumber: 77,
		City: "denver", Loc: geo.Pt(39.7, -105),
		Ranges: []netgen.Prefix{{Addr: 0x04000000, Len: 22}},
	}
	out := rec.Format()
	for _, want := range []string{"ORG-77", "EXAMPLENET", "denver", "AS77", "4.0.0.0/22"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
