// Package geonet is a full reproduction of "On the Geographic Location
// of Internet Resources" (Lakhina, Byers, Crovella, Matta — IMC 2002).
//
// The paper measured where Internet routers, links and autonomous
// systems physically sit: router density grows superlinearly with
// population density, 75-95% of links form in a distance-sensitive
// (exponentially decaying) regime, and AS geographic footprints show a
// long-tailed, two-regime dispersion structure.
//
// This module rebuilds the paper's entire measurement stack as
// simulatable substrates — a synthetic ground-truth Internet, a
// packet-level traceroute simulator, Skitter and Mercator collectors,
// IxMapper- and EdgeScape-style geolocation tools, RFC 1876 DNS LOC, a
// whois registry and RouteViews-style BGP tables — then re-measures
// every table and figure through that pipeline. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// Entry points: internal/core.Run builds the pipeline;
// internal/core.Experiments regenerates the paper's tables and figures;
// cmd/paperrepro is the command-line driver; bench_test.go holds one
// benchmark per table and figure.
//
// # Parallelism
//
// The pipeline fans out across cores: core.Config.Workers bounds the
// pipeline's stage fan-out (<= 0 means one worker per CPU).
// Independent stages run concurrently — the two BGP epoch assemblies,
// the Skitter and Mercator collections, and the four Table-I
// dataset-mapper combinations — and the hot kernels inside them fan
// out too: Skitter probes per-monitor, Mercator traces in fixed-size
// batches, and the Section V pairwise-distance histogram runs over
// triangle-strided chunks with a latitude-band prune. The analysis
// kernels, which also run standalone from experiments and benches,
// parallelize up to GOMAXPROCS instead of reading Config.Workers; cap
// GOMAXPROCS (as paperrepro's -workers flag does) to bound them too.
// All of it is
// built on internal/parallel (bounded worker pools, chunked ForEach,
// and a map-reduce whose per-chunk accumulators merge in a fixed
// order), so a (seed, scale) pair produces byte-identical reports at
// any worker count — the property core.TestWorkersDeterminism locks in.
//
// # Scenario sweeps and the golden regression corpus
//
// The paper's findings are claims about one synthetic world; the
// scenario engine asks how they move across many. internal/scenario
// runs whole pipelines as one declarative workload: a scenario.Spec
// names a variant (seed, scale, workers, route-cache budget, plus the
// netgen ablations — skitter monitor count, AS count factor,
// extra-link density, distance-independent link fraction, and uniform
// "Waxman" placement), a scenario.Matrix expands axis lists into the
// cross product in a fixed order, and scenario.Sweep executes the
// specs concurrently — shared-nothing pipelines under one global
// worker budget, split by parallel.NestedBudget so N pipelines times M
// inner workers never oversubscribes — then reduces results in spec
// order. Each scenario yields a core.Digest (a SHA-256 over every
// experiment's rendered tables and figure data) and headline metrics;
// the report's sensitivity tables show how Table-I mapper agreement
// and the Section V distance-preference exponent move along each axis.
//
// cmd/sweep is the driver:
//
//	go run ./cmd/sweep -seeds 1,2,3 -scales 0.02,0.05
//	go run ./cmd/sweep -spec specs.json -json
//
// The digests double as the permanent regression net. The files under
// internal/scenario/testdata/golden pin the digest and metrics of a
// fixed spec set (scenario.TestGoldenCorpus), and
// core.TestConfigDigestPinned pins the scale-0.02 digest as a
// constant — so any change to pipeline output anywhere fails tests
// until regenerated with
//
//	go test ./internal/scenario -run TestGoldenCorpus -update
//
// and reviewed as an explicit golden diff.
//
// # Online serving (geoserve)
//
// The Section III-B mappers also run as an online query service.
// internal/geoserve compiles a finished pipeline
// (core.Pipeline.Serve) into an immutable snapshot — a sorted /24
// interval index with exact precomputed answers for every known
// interface address and prefix-level answers for generic hosts, each
// carrying location, method attribution, BGP origin AS and a
// confidence radius from the AS's geographic footprint — published
// through an atomic pointer for lock-free concurrent lookups (two
// binary searches, zero allocations) and hot-swappable when a new
// pipeline finishes building in the background. cmd/geoserved serves
// the HTTP JSON API (locate, batch, AS footprints, healthz, statusz,
// admin rebuild):
//
//	go run ./cmd/geoserved -addr :8080 -scale 0.1
//
// and cmd/geoload drives it closed-loop (uniform, Zipf-over-prefixes
// or unmappable-heavy address mixes, in-process or over HTTP) with
// bench.sh-compatible JSON reports. With -shards N the snapshot serves
// as a prefix-sharded scatter-gather cluster: N contiguous cuts of the
// /24 interval index, each an independently hot-swappable shard with
// its own metrics and load-shedding budget (429 when a shard's batch
// queue is at budget), swapped shard by shard behind an epoch guard on
// rebuild; geoload reports per-shard QPS against sharded targets.
// Snapshot digests follow the same determinism discipline as report
// digests; geoserve's golden tests pin them byte-for-byte across
// worker counts, hot-swaps and — the shard-count invariance — across
// cluster topologies {1, 2, 3, 8} vs the unsharded engine.
//
// # Replicated serving (snapfile, replica, faultinject)
//
// Snapshots also travel between processes. internal/geoserve/snapfile
// is the versioned on-disk format — a length-prefixed columnar layout
// whose trailer carries both a whole-file hash and the snapshot's
// content digest, so Load verifies (never trusts) every byte and
// rejects truncated, corrupt or version-skewed files with typed
// errors; a fuzzed loader guarantees no input panics or loads with a
// wrong digest. internal/geoserve/replica builds a serving fleet on
// top: a builder publishes digest-named epochs over HTTP
// (/v1/replication/*, Range-resumable), replicas run a fetch → verify
// → swap loop under capped jittered backoff (a bad fetch leaves the
// last-good epoch serving; a dead builder leaves replicas serving
// stale and saying so), and a router fans lookups over the fleet with
// health-checked ejection/readmission, epoch-consistent batches, and
// 503 + Retry-After only when no healthy replica holds a complete
// epoch. geoserved grows the matching modes (-write-snapshot,
// -snapshot cold start, -publish, -replica-of, -router) and geoload a
// -target-list multi-replica bench mode; internal/faultinject is the
// deterministic chaos layer (seeded drops, truncations, bit-flips,
// latency, mid-transfer resets over in-memory HTTP) whose suite proves
// the degraded modes, and the replication golden pins that a replica
// serving a fetched snapshot answers byte-identically to the engine
// that compiled it.
//
// Run the benchmark suite with
//
//	go test -bench=. -benchmem
//
// or scripts/bench.sh, which snapshots results to BENCH_<date>.json and
// prints deltas against the previous snapshot via cmd/benchcmp. The
// table/figure benches analyse a shared pipeline built at the paper's
// full scale; pass -short (or set GEONET_BENCH_SCALE) to shrink it.
// Compare BenchmarkPipelineFull against BenchmarkPipelineFullSerial to
// measure the parallel speedup on your hardware.
package geonet
