// Package geonet is a full reproduction of "On the Geographic Location
// of Internet Resources" (Lakhina, Byers, Crovella, Matta — IMC 2002).
//
// The paper measured where Internet routers, links and autonomous
// systems physically sit: router density grows superlinearly with
// population density, 75-95% of links form in a distance-sensitive
// (exponentially decaying) regime, and AS geographic footprints show a
// long-tailed, two-regime dispersion structure.
//
// This module rebuilds the paper's entire measurement stack as
// simulatable substrates — a synthetic ground-truth Internet, a
// packet-level traceroute simulator, Skitter and Mercator collectors,
// IxMapper- and EdgeScape-style geolocation tools, RFC 1876 DNS LOC, a
// whois registry and RouteViews-style BGP tables — then re-measures
// every table and figure through that pipeline. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// Entry points: internal/core.Run builds the pipeline;
// internal/core.Experiments regenerates the paper's tables and figures;
// cmd/paperrepro is the command-line driver; bench_test.go holds one
// benchmark per table and figure.
package geonet
