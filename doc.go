// Package geonet is a full reproduction of "On the Geographic Location
// of Internet Resources" (Lakhina, Byers, Crovella, Matta — IMC 2002).
//
// The paper measured where Internet routers, links and autonomous
// systems physically sit: router density grows superlinearly with
// population density, 75-95% of links form in a distance-sensitive
// (exponentially decaying) regime, and AS geographic footprints show a
// long-tailed, two-regime dispersion structure.
//
// This module rebuilds the paper's entire measurement stack as
// simulatable substrates — a synthetic ground-truth Internet, a
// packet-level traceroute simulator, Skitter and Mercator collectors,
// IxMapper- and EdgeScape-style geolocation tools, RFC 1876 DNS LOC, a
// whois registry and RouteViews-style BGP tables — then re-measures
// every table and figure through that pipeline. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// Entry points: internal/core.Run builds the pipeline;
// internal/core.Experiments regenerates the paper's tables and figures;
// cmd/paperrepro is the command-line driver; bench_test.go holds one
// benchmark per table and figure.
//
// # Parallelism
//
// The pipeline fans out across cores: core.Config.Workers bounds the
// pipeline's stage fan-out (<= 0 means one worker per CPU).
// Independent stages run concurrently — the two BGP epoch assemblies,
// the Skitter and Mercator collections, and the four Table-I
// dataset-mapper combinations — and the hot kernels inside them fan
// out too: Skitter probes per-monitor, Mercator traces in fixed-size
// batches, and the Section V pairwise-distance histogram runs over
// triangle-strided chunks with a latitude-band prune. The analysis
// kernels, which also run standalone from experiments and benches,
// parallelize up to GOMAXPROCS instead of reading Config.Workers; cap
// GOMAXPROCS (as paperrepro's -workers flag does) to bound them too.
// All of it is
// built on internal/parallel (bounded worker pools, chunked ForEach,
// and a map-reduce whose per-chunk accumulators merge in a fixed
// order), so a (seed, scale) pair produces byte-identical reports at
// any worker count — the property core.TestWorkersDeterminism locks in.
//
// Run the benchmark suite with
//
//	go test -bench=. -benchmem
//
// or scripts/bench.sh, which snapshots results to BENCH_<date>.json and
// prints deltas against the previous snapshot via cmd/benchcmp. The
// table/figure benches analyse a shared pipeline built at the paper's
// full scale; pass -short (or set GEONET_BENCH_SCALE) to shrink it.
// Compare BenchmarkPipelineFull against BenchmarkPipelineFullSerial to
// measure the parallel speedup on your hardware.
package geonet
